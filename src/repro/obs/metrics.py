"""Metric registry: counters, gauges, histograms and quantile sketches.

Every metric the pipeline can emit is declared up front in
:data:`METRICS`; recording to an undeclared name raises immediately,
and ``tests/test_obs_docs.py`` asserts the README metric table matches
this registry exactly, so code and documentation cannot drift apart.

Registries are cheap plain-dict containers with snapshot/merge
semantics: a worker task records into its own registry and the
resulting snapshot is merged into the parent, so multi-worker runs
aggregate without locking the hot path (see
:meth:`repro.obs.recorder.Telemetry.task_scope`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.obs.sketch import QuantileSketch


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric.

    Attributes:
        kind: ``"counter"``, ``"gauge"``, ``"histogram"`` or
            ``"sketch"`` (streaming quantiles, see
            :class:`repro.obs.sketch.QuantileSketch`).
        description: one-line meaning, surfaced in the README table.
        unit: unit of the recorded values (informational).
        buckets: upper-inclusive bucket edges (histograms only); values
            above the last edge land in an overflow bucket.  Sketches
            need no edges — that is the point of them.
        deterministic: True when the aggregated value is identical for
            every ``workers`` setting of the same run (timing aside);
            False for values that depend on the RNG streams of the
            chosen training schedule.
    """

    kind: str
    description: str
    unit: str = ""
    buckets: tuple[float, ...] | None = None
    deterministic: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram", "sketch"):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if (self.kind == "histogram") != (self.buckets is not None):
            raise ValueError("histograms (and only histograms) need buckets")


#: Every metric name the pipeline emits, with its kind and meaning.
METRICS: dict[str, MetricSpec] = {
    "trace.packets": MetricSpec(
        "counter", "packets emitted by the trace simulator", unit="packets"
    ),
    "corpus.sentences": MetricSpec(
        "counter", "sentences (service x dT cells) built into the corpus"
    ),
    "corpus.tokens": MetricSpec(
        "counter", "tokens (packet sender occurrences) in the corpus"
    ),
    "corpus.sentence_length": MetricSpec(
        "histogram",
        "distribution of corpus sentence lengths",
        unit="tokens",
        buckets=(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    ),
    "train.vocab_size": MetricSpec(
        "gauge", "vocabulary size (senders embedded) of the last fit"
    ),
    "train.pairs_planned": MetricSpec(
        "gauge",
        "expected (center, context) pairs over all epochs "
        "(drives the learning-rate schedule)",
    ),
    "train.epochs": MetricSpec("counter", "training epochs run"),
    "train.pairs": MetricSpec(
        "counter",
        "skip-gram pairs pushed through SGD",
        deterministic=False,
    ),
    "train.batches": MetricSpec(
        "counter", "SGD batches executed", deterministic=False
    ),
    "train.batch_pairs": MetricSpec(
        "histogram",
        "distribution of SGD batch sizes",
        unit="pairs",
        buckets=(256, 1024, 4096, 16384, 65536),
        deterministic=False,
    ),
    "train.negative_draws": MetricSpec(
        "counter",
        "negative samples drawn from the unigram^0.75 table",
        deterministic=False,
    ),
    "train.warm_tokens": MetricSpec(
        "gauge",
        "vocabulary tokens seeded from a prior embedding (warm start)",
    ),
    "store.hits": MetricSpec(
        "counter", "pipeline stages served from the artifact store"
    ),
    "store.misses": MetricSpec(
        "counter", "stage artifacts absent from the store (recomputed)"
    ),
    "store.writes": MetricSpec(
        "counter", "stage artifacts written to the store"
    ),
    "store.invalid": MetricSpec(
        "counter", "cached artifacts rejected as corrupted or stale-format"
    ),
    "ingest.sender_packets": MetricSpec(
        "histogram",
        "distribution of packets per observed sender at ingest",
        unit="packets",
        buckets=(1, 2, 5, 10, 20, 50, 100, 250, 1000, 10000),
    ),
    "knn.queries": MetricSpec("counter", "k-NN query points searched"),
    "knn.neighbor_distance": MetricSpec(
        "histogram",
        "distribution of cosine distances to returned k-NN neighbors",
        unit="distance",
        buckets=(0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5),
        deterministic=False,
    ),
    "knn.distance_computations": MetricSpec(
        "counter",
        "candidate cosine similarities computed (exact: queries x corpus "
        "size; IVF: coarse scan + probed candidates + fallbacks)",
    ),
    "ann.probes": MetricSpec(
        "counter", "inverted lists probed across IVF searches"
    ),
    "ann.candidates_scored": MetricSpec(
        "counter",
        "candidate similarities scored inside probed IVF lists or "
        "along HNSW graph traversals",
        deterministic=False,
    ),
    "ann.recall_at_k": MetricSpec(
        "gauge",
        "recall@k of the last ANN search vs an exact rescore of a "
        "seeded query sample",
        deterministic=False,
    ),
    "ann.retrains": MetricSpec(
        "counter",
        "ANN indexes rebuilt because incremental updates crossed the "
        "IVF list-imbalance or HNSW tombstone-occupancy threshold",
        deterministic=False,
    ),
    "ann.graph_build_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of HNSW graph construction wall time",
        unit="seconds",
        deterministic=False,
    ),
    "ann.hops": MetricSpec(
        "counter",
        "graph nodes expanded (descent steps + beam expansions) across "
        "HNSW searches",
        deterministic=False,
    ),
    "ann.candidate_set_size": MetricSpec(
        "sketch",
        "streaming quantiles of per-query HNSW candidate-set size "
        "before exact rescoring",
        unit="candidates",
        deterministic=False,
    ),
    "graph.nodes": MetricSpec("gauge", "vertices of the last k'-NN graph"),
    "graph.edges": MetricSpec(
        "counter", "directed edges added to k'-NN graphs"
    ),
    "louvain.passes": MetricSpec(
        "counter",
        "Louvain level passes (local moving + aggregation rounds)",
        deterministic=False,
    ),
    "louvain.moves": MetricSpec(
        "counter",
        "accepted node moves across all Louvain passes",
        deterministic=False,
    ),
    "eval.accuracy": MetricSpec(
        "gauge",
        "leave-one-out classification accuracy of the last evaluation",
        deterministic=False,
    ),
    "drift.cosine_displacement": MetricSpec(
        "gauge",
        "mean aligned cosine displacement of retained senders vs the "
        "previous model",
        deterministic=False,
    ),
    "drift.neighbor_churn": MetricSpec(
        "gauge",
        "mean 1 - Jaccard overlap of per-sender k-NN sets vs the "
        "previous model",
        deterministic=False,
    ),
    "drift.cluster_ari": MetricSpec(
        "gauge",
        "adjusted Rand index between consecutive Louvain partitions",
        deterministic=False,
    ),
    "drift.cluster_ami": MetricSpec(
        "gauge",
        "adjusted mutual information between consecutive Louvain "
        "partitions",
        deterministic=False,
    ),
    "quality.packet_zscore": MetricSpec(
        "gauge",
        "z-score of the ingested packet volume vs registry history",
    ),
    "quality.sender_zscore": MetricSpec(
        "gauge",
        "z-score of the ingested sender count vs registry history",
    ),
    "quality.port_mix_shift": MetricSpec(
        "gauge",
        "total-variation distance of the port mix vs the previous run",
    ),
    "quality.empty_window_rate": MetricSpec(
        "gauge",
        "share of dT time windows with no traffic at ingest",
    ),
    "health.gate_failures": MetricSpec(
        "counter",
        "warm updates refused promotion by the health gate",
        deterministic=False,
    ),
    "proc.rss_peak": MetricSpec(
        "gauge",
        "peak process resident set size sampled at stage boundaries",
        unit="bytes",
        deterministic=False,
    ),
    "proc.rss_peak_children": MetricSpec(
        "gauge",
        "aggregate peak resident set size of process-pool children "
        "(live VmHWM sum, falling back to RUSAGE_CHILDREN)",
        unit="bytes",
        deterministic=False,
    ),
    "stage.seconds": MetricSpec(
        "sketch",
        "streaming quantiles of per-stage wall times",
        unit="seconds",
        deterministic=False,
    ),
    "train.epoch_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of per-epoch training wall times",
        unit="seconds",
        deterministic=False,
    ),
    "knn.search_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of k-NN search call latency",
        unit="seconds",
        deterministic=False,
    ),
    "telemetry.flushes": MetricSpec(
        "counter",
        "live telemetry frames flushed to the NDJSON stream",
        deterministic=False,
    ),
    "telemetry.flush_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of telemetry flush latency",
        unit="seconds",
        deterministic=False,
    ),
    "telemetry.worker_snapshots": MetricSpec(
        "counter",
        "periodic in-flight snapshots received from process-pool workers",
        deterministic=False,
    ),
    "serve.ingested_packets": MetricSpec(
        "counter",
        "packets accepted by the serve loop's ingest queue",
        unit="packets",
    ),
    "serve.empty_batches": MetricSpec(
        "counter",
        "empty micro-batches tolerated as no-ops by the serve loop",
    ),
    "serve.batches": MetricSpec(
        "counter",
        "non-empty micro-batches applied by the single-writer update loop",
    ),
    "serve.promotions": MetricSpec(
        "counter",
        "serve-loop updates promoted into the live model snapshot",
        deterministic=False,
    ),
    "serve.rollbacks": MetricSpec(
        "counter",
        "serve-loop updates refused by the health gate (prior snapshot "
        "stays live) or failed outright",
        deterministic=False,
    ),
    "serve.queries": MetricSpec(
        "counter", "queries answered from the live model snapshot"
    ),
    "serve.query_errors": MetricSpec(
        "counter",
        "queries rejected (unknown sender, malformed request, "
        "unavailable capability)",
    ),
    "serve.query_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of query latency in the serving read path",
        unit="seconds",
        deterministic=False,
    ),
    "serve.promotion_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of snapshot build + atomic swap time per "
        "promotion",
        unit="seconds",
        deterministic=False,
    ),
    "serve.warmup_seconds": MetricSpec(
        "sketch",
        "streaming quantiles of pre-promotion snapshot warm-up (page "
        "pre-touch + priming search) time",
        unit="seconds",
        deterministic=False,
    ),
}


def _spec_for(name: str, kind: str) -> MetricSpec:
    spec = METRICS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown metric {name!r}; declare it in repro.obs.metrics.METRICS"
        )
    if spec.kind != kind:
        raise ValueError(f"metric {name!r} is a {spec.kind}, not a {kind}")
    return spec


class Histogram:
    """Fixed-bucket histogram with upper-inclusive edges.

    A value ``v`` lands in the first bucket whose edge is ``>= v``;
    values above the last edge land in the trailing overflow bucket.
    Tracks the observation count and sum alongside the bucket counts,
    so means survive snapshot/merge.
    """

    __slots__ = ("edges", "_edge_list", "counts", "total", "sum")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        if len(self.edges) == 0 or np.any(np.diff(self.edges) <= 0):
            raise ValueError("bucket edges must be strictly increasing")
        # Plain-list mirror of the edges: bisect on a list is much
        # cheaper than building a 1-element ndarray per observation.
        self._edge_list = self.edges.tolist()
        self.counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (scalar fast path, no allocation)."""
        value = float(value)
        # bisect_left == searchsorted(side="left"): first edge >= value.
        self.counts[bisect.bisect_left(self._edge_list, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch of observations in one vectorized pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="left")
        self.counts += np.bincount(idx, minlength=len(self.counts))
        self.total += int(values.size)
        self.sum += float(values.sum())

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        """Plain-dict form for snapshots and NDJSON export."""
        return {
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "total": self.total,
            "sum": self.sum,
        }

    def merge_dict(self, data: dict) -> None:
        """Fold a :meth:`to_dict` snapshot into this histogram."""
        if list(data["edges"]) != self.edges.tolist():
            raise ValueError("cannot merge histograms with different edges")
        self.counts += np.asarray(data["counts"], dtype=np.int64)
        self.total += int(data["total"])
        self.sum += float(data["sum"])


class MetricsRegistry:
    """One process- or task-local set of metric values.

    All operations validate the metric name against :data:`METRICS`.
    The registry itself is not thread-safe; concurrent writers each get
    their own registry (via task scopes) and merge snapshots.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.sketches: dict[str, QuantileSketch] = {}

    def add(self, name: str, value: int | float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        _spec_for(name, "counter")
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        _spec_for(name, "gauge")
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram or sketch ``name``."""
        self._series(name).observe(value)

    def observe_many(self, name: str, values: np.ndarray) -> None:
        """Record a batch of observations into histogram or sketch."""
        self._series(name).observe_many(values)

    def _histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            spec = _spec_for(name, "histogram")
            assert spec.buckets is not None
            hist = self.histograms[name] = Histogram(spec.buckets)
        return hist

    def _sketch(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            _spec_for(name, "sketch")
            sketch = self.sketches[name] = QuantileSketch()
        return sketch

    def _series(self, name: str) -> Histogram | QuantileSketch:
        """The observable series for ``name``, dispatched by kind."""
        series = self.histograms.get(name) or self.sketches.get(name)
        if series is not None:
            return series
        spec = METRICS.get(name)
        if spec is None:
            raise ValueError(
                f"unknown metric {name!r}; declare it in "
                "repro.obs.metrics.METRICS"
            )
        if spec.kind == "sketch":
            return self._sketch(name)
        return self._histogram(name)

    def snapshot(self) -> dict:
        """Plain-dict copy of every recorded value."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict() for name, hist in self.histograms.items()
            },
            "sketches": {
                name: sketch.to_dict()
                for name, sketch in self.sketches.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters, histograms and sketches accumulate; gauges take the
        incoming value (last write wins, as for direct
        :meth:`set_gauge` calls).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.add(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            self._histogram(name).merge_dict(data)
        for name, data in snapshot.get("sketches", {}).items():
            self._sketch(name).merge_dict(data)
