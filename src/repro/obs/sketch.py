"""Mergeable streaming quantile sketch (KLL-style, pure numpy).

Fixed-bucket histograms cannot report an accurate p99 across six
orders of latency magnitude — the edges would have to be known up
front.  :class:`QuantileSketch` is the fourth metric kind of the
registry (:mod:`repro.obs.metrics`): a bounded-memory compactor
hierarchy in the style of the KLL sketch [Karnin, Lang, Liberty 2016]
that supports streaming inserts, snapshot/merge (the same worker-scope
machinery counters and histograms use), and ``p50/p95/p99`` accessors.

Level ``h`` holds raw values each representing ``2**h`` observations.
When a level overflows its capacity ``k``, it is sorted and every
other element is promoted to the next level (the survivor parity
alternates per compaction, so rank errors cancel in expectation
instead of accumulating with a sign).  Total retained values are
``O(k * log(n / k))`` and the rank error is a small multiple of
``levels / k`` — with the default ``k = 1024`` the observed relative
p99 error on heavy-tailed latency-shaped streams stays within a few
percent (pinned under 5% by ``tests/test_live.py``).

Compaction is deterministic for a fixed insertion order: no RNG
stream is consumed, so instrumented runs stay bit-identical to
uninstrumented ones.  Merging is associative and commutative up to
the sketch's error bound (exactly so while every level is still under
capacity, because then merging is pure concatenation).
"""

from __future__ import annotations

import math

import numpy as np

#: Default per-level capacity; a few KB per sketch, and comfortably
#: under the 5% relative p99 error budget on heavy-tailed latency
#: streams (pinned by ``tests/test_live.py``).
DEFAULT_K = 1024

#: Quantiles surfaced by dashboards, exports and ``runs show --quantiles``.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class QuantileSketch:
    """Bounded-memory streaming quantiles with snapshot/merge support.

    Attributes:
        k: per-level capacity (accuracy/memory knob).
        count: total observations folded in (across merges).
        sum: sum of all observations (means survive merge).
    """

    __slots__ = ("k", "count", "sum", "_min", "_max", "_levels", "_parity")

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k < 8:
            raise ValueError(f"sketch capacity k must be >= 8, got {k}")
        self.k = int(k)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # _levels[h] holds plain floats, each standing for 2**h values.
        self._levels: list[list[float]] = [[]]
        self._parity = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        self._levels[0].append(value)
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._levels[0]) >= self.k:
            self._compress()

    def observe_many(self, values: np.ndarray) -> None:
        """Fold a batch of observations in one pass."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self._levels[0].extend(values.tolist())
        self.count += int(values.size)
        self.sum += float(values.sum())
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        if len(self._levels[0]) >= self.k:
            self._compress()

    def _compress(self) -> None:
        """Compact every overflowing level, cascading upward.

        An odd-sized buffer leaves one element behind (compacting pairs
        values, so only an even count keeps total weight exact); which
        end survives alternates with the same parity bit that picks the
        promoted elements.
        """
        h = 0
        while h < len(self._levels):
            buf = self._levels[h]
            if len(buf) < self.k:
                h += 1
                continue
            arr = np.sort(np.asarray(buf, dtype=np.float64))
            if len(arr) % 2:
                if self._parity:
                    leftover, arr = [float(arr[-1])], arr[:-1]
                else:
                    leftover, arr = [float(arr[0])], arr[1:]
            else:
                leftover = []
            promoted = arr[self._parity :: 2]
            self._parity ^= 1
            self._levels[h] = leftover
            if h + 1 == len(self._levels):
                self._levels.append([])
            self._levels[h + 1].extend(promoted.tolist())
            h += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def min(self) -> float | None:
        """Smallest observation, or None while empty."""
        return None if self.count == 0 else self._min

    @property
    def max(self) -> float | None:
        """Largest observation, or None while empty."""
        return None if self.count == 0 else self._max

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 while empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1] (NaN while empty).

        Every retained value is a real observation, so estimates always
        lie inside ``[min, max]``; ``q=0``/``q=1`` return the exact
        extremes (tracked separately, so compaction cannot lose them).
        """
        if self.count == 0:
            return math.nan
        q = min(max(float(q), 0.0), 1.0)
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        values, weights = [], []
        for h, buf in enumerate(self._levels):
            if buf:
                values.append(np.asarray(buf, dtype=np.float64))
                weights.append(np.full(len(buf), float(1 << h)))
        v = np.concatenate(values)
        w = np.concatenate(weights)
        order = np.argsort(v, kind="stable")
        v, w = v[order], w[order]
        cw = np.cumsum(w)
        idx = int(np.searchsorted(cw, q * cw[-1], side="left"))
        return float(v[min(idx, len(v) - 1)])

    @property
    def p50(self) -> float:
        """Estimated median."""
        return self.quantile(0.5)

    @property
    def p95(self) -> float:
        """Estimated 95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """Estimated 99th percentile."""
        return self.quantile(0.99)

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict (JSON-ready) form for snapshots and export."""
        return {
            "k": self.k,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self._min,
            "max": None if self.count == 0 else self._max,
            "parity": self._parity,
            "levels": [list(buf) for buf in self._levels],
        }

    def merge_dict(self, data: dict) -> None:
        """Fold a :meth:`to_dict` snapshot into this sketch.

        Levels concatenate weight-for-weight, then any overflowing
        level compacts; capacities must match (like histogram edges).
        """
        if int(data["k"]) != self.k:
            raise ValueError("cannot merge sketches with different capacities")
        self.count += int(data["count"])
        self.sum += float(data["sum"])
        if data.get("min") is not None:
            self._min = min(self._min, float(data["min"]))
        if data.get("max") is not None:
            self._max = max(self._max, float(data["max"]))
        for h, buf in enumerate(data["levels"]):
            while len(self._levels) <= h:
                self._levels.append([])
            self._levels[h].extend(float(x) for x in buf)
        self._compress()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one."""
        self.merge_dict(other.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        """Reconstruct a sketch from its :meth:`to_dict` form."""
        sketch = cls(k=int(data["k"]))
        sketch.count = int(data["count"])
        sketch.sum = float(data["sum"])
        sketch._min = math.inf if data.get("min") is None else float(data["min"])
        sketch._max = -math.inf if data.get("max") is None else float(data["max"])
        sketch._parity = int(data.get("parity", 0))
        sketch._levels = [
            [float(x) for x in buf] for buf in data["levels"]
        ] or [[]]
        return sketch


def summarize(data: dict) -> dict:
    """Compact summary (count/sum/min/max/p50/p95/p99) of a sketch dict.

    This is what live frames, NDJSON exports and ``runs show
    --quantiles`` surface instead of the raw level buffers.
    """
    sketch = QuantileSketch.from_dict(data)
    summary = {
        "count": sketch.count,
        "sum": sketch.sum,
        "min": sketch.min,
        "max": sketch.max,
    }
    for q in SUMMARY_QUANTILES:
        value = sketch.quantile(q)
        summary[f"p{int(q * 100)}"] = None if math.isnan(value) else value
    return summary
