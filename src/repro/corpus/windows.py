"""Time-window assignment for corpus sentences (ΔT splitting)."""

from __future__ import annotations

import numpy as np


def window_indices(
    times: np.ndarray, t_start: float, delta_t: float
) -> np.ndarray:
    """Index of the ``[t_start + i*delta_t, t_start + (i+1)*delta_t)``
    window containing each timestamp.

    Timestamps before ``t_start`` raise, as they would silently land in
    negative windows.
    """
    if delta_t <= 0:
        raise ValueError("delta_t must be positive")
    times = np.asarray(times, dtype=np.float64)
    if len(times) and times.min() < t_start:
        raise ValueError("timestamps before the corpus start")
    return np.floor((times - t_start) / delta_t).astype(np.int64)
