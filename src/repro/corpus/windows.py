"""Time-window assignment for corpus sentences (ΔT splitting).

The ΔT grid is the load-bearing coordinate system of the incremental
pipeline: corpus sentences, rolling-window eviction, affected-window
rebuilds and shard planning all index the same
``[origin + i*ΔT, origin + (i+1)*ΔT)`` windows.  :class:`WindowGrid`
owns that arithmetic in one place so every consumer — the corpus
builder, the streaming sharded build, and
:meth:`repro.core.pipeline.DarkVec.update` — provably floors against
the same origin.  That shared grid is what makes sub-day updates
composable: N micro-batch updates and one merged daily update evict
and rebuild exactly the same window cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.packet import SECONDS_PER_DAY


def window_indices(
    times: np.ndarray, t_start: float, delta_t: float
) -> np.ndarray:
    """Index of the ``[t_start + i*delta_t, t_start + (i+1)*delta_t)``
    window containing each timestamp.

    Timestamps before ``t_start`` raise, as they would silently land in
    negative windows.
    """
    if delta_t <= 0:
        raise ValueError("delta_t must be positive")
    times = np.asarray(times, dtype=np.float64)
    if len(times) and times.min() < t_start:
        raise ValueError("timestamps before the corpus start")
    return np.floor((times - t_start) / delta_t).astype(np.int64)


@dataclass(frozen=True)
class WindowGrid:
    """The ΔT window grid anchored at a fixed origin.

    Attributes:
        origin: timestamp of the left edge of window 0 (the first
            ``fit``'s start time; *never* re-derived across updates, so
            successive micro-batches index mutually consistent cells).
        delta_t: window width in seconds.
    """

    origin: float
    delta_t: float

    def __post_init__(self) -> None:
        if self.delta_t <= 0:
            raise ValueError("delta_t must be positive")

    def indices(self, times: np.ndarray) -> np.ndarray:
        """Window index per timestamp (see :func:`window_indices`)."""
        return window_indices(times, self.origin, self.delta_t)

    def index_of(self, t: float) -> int:
        """Window index containing timestamp ``t`` (may be negative)."""
        return int(np.floor((t - self.origin) / self.delta_t))

    def start(self, index: int) -> float:
        """Timestamp of the left (inclusive) edge of window ``index``."""
        return self.origin + index * self.delta_t

    def keep_from(self, end_time: float, window_days: float) -> int:
        """First window index retained by the rolling-window eviction.

        Everything strictly before ``end_time - window_days`` days is
        evicted, *floored to a window boundary* so retained sentences
        stay exact (a window is kept whole or dropped whole).  Clamped
        at 0: the grid never extends before its origin.

        Monotone in ``end_time`` — which is what makes sub-day
        eviction composable: the windows an intermediate micro-batch
        update evicts are a subset of what the merged daily update
        would evict, and the final state agrees.
        """
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        cut = self.index_of(end_time - window_days * SECONDS_PER_DAY)
        return max(cut, 0)

    def rebuild_from(self, start_time: float, keep_from: int) -> int:
        """First window index whose sentence must be rebuilt.

        New traffic starting at ``start_time`` can only change windows
        at or after its first packet's cell; windows before that — but
        inside the retention floor ``keep_from`` — are retained
        untouched.  When a micro-batch lands mid-window, the boundary
        cell is rebuilt from the *merged* kept trace, so the rebuilt
        sentence includes the packets earlier batches contributed to
        the same cell — the key to N-batch/one-batch equivalence.
        """
        return max(self.index_of(start_time), keep_from)
