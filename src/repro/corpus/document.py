"""Corpus containers.

A :class:`Sentence` is the time-ordered sequence of sender tokens seen
by one service within one ΔT window; a :class:`Corpus` is the union of
all sentences over all services and windows (paper Section 5.2).
Tokens are integers — trace sender indices for DarkVec, encoded field
values for the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Sentence:
    """One per-service, per-window token sequence."""

    tokens: np.ndarray
    service_id: int
    window: int

    def __post_init__(self) -> None:
        if self.tokens.ndim != 1:
            raise ValueError("sentence tokens must be one-dimensional")

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class Corpus:
    """A bag of sentences with bookkeeping for the experiments."""

    sentences: list[Sentence]
    service_names: tuple[str, ...] = ()
    _token_counts: dict[int, int] | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.sentences)

    def __iter__(self):
        return iter(self.sentences)

    @property
    def n_tokens(self) -> int:
        """Total tokens across all sentences."""
        return sum(len(sentence) for sentence in self.sentences)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens."""
        return len(self.token_counts())

    def token_counts(self) -> dict[int, int]:
        """Occurrences of each distinct token across the corpus."""
        if self._token_counts is None:
            counts: dict[int, int] = {}
            for sentence in self.sentences:
                uniq, freq = np.unique(sentence.tokens, return_counts=True)
                for token, count in zip(uniq, freq):
                    token = int(token)
                    counts[token] = counts.get(token, 0) + int(count)
            self._token_counts = counts
        return self._token_counts

    def filtered_to(self, allowed: np.ndarray) -> "Corpus":
        """Corpus view keeping only tokens present in ``allowed``.

        Sentences whose tokens are all filtered out are dropped.  For
        sender tokens this is exactly the paper's activity filter
        applied *after* windowing, which yields the same sentences as
        filtering the trace first: packet order is preserved and
        (service, window) cells never merge or split.
        """
        allowed = np.unique(np.asarray(allowed, dtype=np.int64))
        kept: list[Sentence] = []
        for sentence in self.sentences:
            tokens = np.asarray(sentence.tokens, dtype=np.int64)
            if len(allowed) == 0:
                continue
            positions = np.clip(
                np.searchsorted(allowed, tokens), 0, len(allowed) - 1
            )
            mask = allowed[positions] == tokens
            if not mask.any():
                continue
            kept.append(
                Sentence(
                    tokens=sentence.tokens[mask],
                    service_id=sentence.service_id,
                    window=sentence.window,
                )
            )
        return Corpus(sentences=kept, service_names=self.service_names)

    def remapped(self, mapping: np.ndarray) -> "Corpus":
        """Corpus with every token ``t`` replaced by ``mapping[t]``.

        Used when a trace merge re-interns the sender table: old sender
        indices move, and retained sentences must follow.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        sentences = [
            Sentence(
                tokens=mapping[np.asarray(sentence.tokens, dtype=np.int64)],
                service_id=sentence.service_id,
                window=sentence.window,
            )
            for sentence in self.sentences
        ]
        return Corpus(sentences=sentences, service_names=self.service_names)

    def split_windows(self, boundary: int) -> tuple[list[Sentence], list[Sentence]]:
        """Partition sentences into (window < boundary, window >= boundary)."""
        before = [s for s in self.sentences if s.window < boundary]
        after = [s for s in self.sentences if s.window >= boundary]
        return before, after

    def skipgram_count(self, context: int) -> int:
        """Number of skip-grams a full context window ``c`` generates.

        For a sentence of length ``n`` every position contributes up to
        ``2c`` (center, context) pairs, truncated at the sentence
        boundaries.  This is the quantity compared in Table 3.
        """
        if context < 1:
            raise ValueError("context must be positive")
        total = 0
        for sentence in self.sentences:
            n = len(sentence)
            if n < 2:
                continue
            # Sum over positions of min(i, c) + min(n - 1 - i, c); the
            # closed form avoids a per-position loop.
            total += 2 * _one_sided_pairs(n, context)
        return total

    def sentence_length_stats(self) -> dict[str, float]:
        """Min / mean / max sentence length (0s when empty)."""
        lengths = np.array([len(s) for s in self.sentences])
        if lengths.size == 0:
            return {"min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "min": float(lengths.min()),
            "mean": float(lengths.mean()),
            "max": float(lengths.max()),
        }


def _one_sided_pairs(n: int, c: int) -> int:
    """``sum_i min(i, c)`` for ``i`` in ``0..n-1``."""
    if n <= c:
        return n * (n - 1) // 2
    return c * (c - 1) // 2 + (n - c) * c  # ramp + plateau
