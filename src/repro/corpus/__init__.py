"""Corpus construction: from packets to per-service sender sentences."""

from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus, Sentence
from repro.corpus.windows import WindowGrid, window_indices

__all__ = ["Corpus", "CorpusBuilder", "Sentence", "WindowGrid", "window_indices"]
