"""Build the DarkVec corpus from a packet trace.

Implements Section 5.2: packets are split by service and by
non-overlapping ΔT windows; the time-ordered sender sequence of each
(service, window) cell is one sentence.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.corpus.document import Corpus, Sentence
from repro.corpus.windows import WindowGrid
from repro.services.base import ServiceMap
from repro.trace.packet import Trace

HOUR = 3600.0


class CorpusBuilder:
    """Turns traces into corpora for a fixed service map and ΔT."""

    def __init__(self, service_map: ServiceMap, delta_t: float = HOUR) -> None:
        if delta_t <= 0:
            raise ValueError("delta_t must be positive")
        self.service_map = service_map
        self.delta_t = delta_t

    def grid(self, t_start: float) -> WindowGrid:
        """The ΔT window grid this builder splits on, anchored at
        ``t_start`` — the same grid :meth:`repro.core.pipeline.DarkVec.
        update` evicts and rebuilds against."""
        return WindowGrid(origin=t_start, delta_t=self.delta_t)

    def build(
        self,
        trace: Trace,
        keep_senders: np.ndarray | None = None,
        t_start: float | None = None,
    ) -> Corpus:
        """Build the corpus of ``trace``.

        Args:
            trace: packet trace (time-sorted).
            keep_senders: optional sender indices to retain; packets of
                other senders are dropped before sentence construction.
                This implements the paper's activity filter, matching
                gensim's behaviour of removing below-min-count words
                before windowing.
            t_start: origin of the ΔT grid; defaults to the first
                packet's timestamp.
        """
        with obs.span("corpus.build", delta_t=self.delta_t) as sp:
            if keep_senders is not None:
                trace = trace.from_senders(np.asarray(keep_senders))
            if not len(trace):
                return Corpus(
                    sentences=[], service_names=self.service_map.names
                )
            if t_start is None:
                t_start = trace.start_time

            service_ids = self.service_map.service_ids(
                trace.ports, trace.protos
            )
            windows = self.grid(t_start).indices(trace.times)

            # Stable sort by (service, window): packets keep their time
            # order inside each sentence because the trace is time-sorted.
            order = np.lexsort((windows, service_ids))
            service_sorted = service_ids[order]
            window_sorted = windows[order]
            tokens_sorted = trace.senders[order]

            boundaries = np.flatnonzero(
                (np.diff(service_sorted) != 0) | (np.diff(window_sorted) != 0)
            )
            starts = np.concatenate([[0], boundaries + 1])
            ends = np.concatenate([boundaries + 1, [len(tokens_sorted)]])

            sentences = [
                Sentence(
                    tokens=tokens_sorted[lo:hi].copy(),
                    service_id=int(service_sorted[lo]),
                    window=int(window_sorted[lo]),
                )
                for lo, hi in zip(starts, ends)
            ]
            total = int(ends[-1])
            obs.add("corpus.sentences", len(sentences))
            obs.add("corpus.tokens", total)
            obs.observe_many("corpus.sentence_length", ends - starts)
            sp.set(items=total, items_unit="tokens")
        return Corpus(sentences=sentences, service_names=self.service_map.names)
