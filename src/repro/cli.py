"""Command-line interface.

Subcommands mirror the DarkVec workflow:

    repro simulate  --out trace.csv [--scale S --days D --seed N]
    repro stats     --trace trace.csv
    repro train     --trace trace.csv --out vectors.npz [--service ...]
    repro run       --trace trace.csv --cache-dir cache [--state DIR]
    repro resume    --trace trace.csv --cache-dir cache [--state DIR]
    repro update    --trace day31.csv --cache-dir cache [--window-days W]
    repro evaluate  --trace trace.csv --vectors vectors.npz --labels labels.csv
    repro cluster   --trace trace.csv --vectors vectors.npz [--k-prime K]
    repro profile   [--preset small|medium] [--metrics-out trace.ndjson]
    repro top       --stream live.ndjson [--interval S] [--once]
    repro runs      list|show <id>|compare <a> <b>  --cache-dir cache
    repro health    --cache-dir cache
    repro serve     --cache-dir cache [--port P --port-file F --labels L]
    repro query     <op> [--ip A.B.C.D --k K --trace batch.csv]

``run`` executes the staged pipeline against a content-addressed
artifact store and prints the per-stage hit/miss table; ``resume`` is
the same command under a name that documents the intent — re-running
with an unchanged config is a pure cache hit, and flipping one knob
re-runs exactly the stages downstream of it.  ``run`` also persists
the fitted state (default ``<cache-dir>/state``) so ``update`` can
later append a day of traffic and refit warm instead of retraining
from scratch.

``simulate`` also writes ``<out>.labels.csv`` with the ground truth so
the evaluate step can be run on the simulated data.

``train``, ``evaluate``, ``cluster``, ``run``, ``resume`` and
``update`` accept ``--metrics-out PATH`` (export the telemetry trace
as NDJSON) and ``--profile`` (also print a per-stage
time/memory/throughput table).  ``profile`` runs the whole pipeline on
a synthetic scenario with both enabled.  The same commands accept
``--telemetry-out PATH`` (stream live frames every
``--telemetry-interval`` seconds, including in-flight spans and
per-worker RSS) and ``--prom-out PATH`` (Prometheus text exposition,
atomically rewritten per flush); ``repro top --stream PATH`` tails the
live stream from another terminal.

Commands running against an artifact cache append an immutable record
to the run registry (``<cache-dir>/registry/runs.ndjson``); ``repro
runs`` lists, shows and compares those records, and ``repro health``
renders the latest drift/quality verdicts with sparkline history.
``repro update --health-gate`` refuses to persist an update whose
monitors fail, keeping the previous fitted state live.

``serve`` turns the fitted state into a streaming daemon: packet
micro-batches arrive over a localhost JSON-lines socket (``repro
query ingest``), a single writer applies :meth:`DarkVec.update` per
batch behind the health gate, and classify/neighbors/members queries
answer from an atomically-swapped model snapshot — they keep working,
against the previous model, while an update trains or is rolled back.
``query`` is the matching client; with ``--telemetry-out`` on the
daemon, ``repro top`` watches its ingest/query/promotion counters
live.  The daemon trusts local processes by default; ``--token`` (a
shared secret required for ingest/shutdown) and ``--ingest-root`` (a
directory confining path-based ingest) tighten it on shared machines.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.stats import dataset_stats
from repro.core import DarkVec, DarkVecConfig
from repro.core.inspection import inspect_clusters
from repro.graph.silhouette import cluster_silhouettes
from repro.io.csvio import read_trace_csv, write_trace_csv
from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import classification_report
from repro.labels.groundtruth import GroundTruth
from repro.trace.address import ip_to_str, str_to_ip
from repro.trace.generator import generate_trace
from repro.trace.scenario import default_scenario
from repro.utils.tables import format_table
from repro.w2v.keyedvectors import KeyedVectors


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DarkVec reproduction: darknet traffic analysis "
        "with word embeddings",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_live_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--telemetry-out",
            type=Path,
            default=None,
            help="stream live telemetry frames (in-flight spans, "
            "counters, worker RSS, sketch quantiles) to this NDJSON "
            "file while the command runs; tail it with `repro top`",
        )
        cmd.add_argument(
            "--telemetry-interval",
            type=float,
            default=1.0,
            help="seconds between live telemetry flushes (default 1.0)",
        )
        cmd.add_argument(
            "--prom-out",
            type=Path,
            default=None,
            help="also publish a Prometheus text-exposition file, "
            "atomically rewritten on every flush",
        )

    def add_telemetry_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--metrics-out",
            type=Path,
            default=None,
            help="write the telemetry trace (spans + metrics) as NDJSON",
        )
        cmd.add_argument(
            "--profile",
            action="store_true",
            help="profile the run and print a per-stage table "
            "(time, peak memory, throughput)",
        )
        add_live_flags(cmd)

    def add_ann_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--ann-backend",
            choices=("exact", "ivf", "ivfpq", "hnsw"),
            default="exact",
            help="neighbour-search backend: exact (bit-identical brute "
            "force), ivf (inverted-file approximate search), ivfpq "
            "(inverted file + product-quantized codes, compressed), or "
            "hnsw (hierarchical navigable small-world graph)",
        )
        cmd.add_argument(
            "--ann-nlist",
            type=int,
            default=0,
            help="IVF coarse centroids (0 = sqrt(N) at build time)",
        )
        cmd.add_argument(
            "--ann-nprobe",
            type=int,
            default=8,
            help="IVF lists probed per query (the speed/recall knob)",
        )
        cmd.add_argument(
            "--ann-pq-m",
            type=int,
            default=0,
            help="ivfpq subspaces per vector (0 = auto: min(16, dim/4))",
        )
        cmd.add_argument(
            "--ann-pq-bits",
            type=int,
            default=8,
            help="ivfpq bits per code, 1..8 (codebook of 2^bits entries)",
        )
        cmd.add_argument(
            "--ann-hnsw-m",
            type=int,
            default=16,
            help="hnsw graph degree: links per node on upper layers "
            "(layer 0 keeps 2m)",
        )
        cmd.add_argument(
            "--ann-hnsw-ef-build",
            type=int,
            default=80,
            help="hnsw construction beam width",
        )
        cmd.add_argument(
            "--ann-hnsw-ef-search",
            type=int,
            default=8,
            help="hnsw query beam width (the speed/recall knob)",
        )

    def add_ann_override_flags(cmd: argparse.ArgumentParser) -> None:
        # update/serve operate on a saved state: every flag defaults to
        # None so an unset flag keeps the state's own ANN config.
        cmd.add_argument(
            "--ann-backend",
            choices=("exact", "ivf", "ivfpq", "hnsw"),
            default=None,
            help="override the state's neighbour-search backend",
        )
        for flag, dest, help_ in (
            ("--ann-nlist", "ann_nlist", "IVF coarse centroids"),
            ("--ann-nprobe", "ann_nprobe", "IVF lists probed per query"),
            ("--ann-pq-m", "ann_pq_m", "ivfpq subspaces per vector"),
            ("--ann-pq-bits", "ann_pq_bits", "ivfpq bits per code"),
            ("--ann-hnsw-m", "ann_hnsw_m", "hnsw graph degree"),
            ("--ann-hnsw-ef-build", "ann_hnsw_ef_build", "hnsw build beam"),
            ("--ann-hnsw-ef-search", "ann_hnsw_ef_search", "hnsw query beam"),
        ):
            cmd.add_argument(
                flag,
                dest=dest,
                type=int,
                default=None,
                help=f"override the state's {help_}",
            )

    def add_scale_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--shard-size",
            type=int,
            default=0,
            help="stream corpus/vocab building in shards of at most this "
            "many senders (0 = unsharded; results are bit-identical)",
        )
        cmd.add_argument(
            "--mmap",
            dest="use_mmap",
            action=argparse.BooleanOptionalAction,
            default=False,
            help="store stage artifacts in the raw mmap container and "
            "open them as memory-mapped views instead of heap copies",
        )
        cmd.add_argument(
            "--pool-backend",
            choices=("thread", "process"),
            default="thread",
            help="worker-pool backend: thread (exact, GIL-bound) or "
            "process (fork + shared memory, scales past the GIL)",
        )

    simulate = sub.add_parser("simulate", help="generate a synthetic trace")
    simulate.add_argument("--out", required=True, type=Path)
    simulate.add_argument("--scale", type=float, default=0.05)
    simulate.add_argument("--days", type=float, default=10.0)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument(
        "--preset",
        choices=("default", "minimal", "worm", "quiet"),
        default="default",
        help="scenario preset (scale only applies to 'default')",
    )
    simulate.add_argument(
        "--config",
        type=Path,
        default=None,
        help="JSON scenario document (overrides --preset/--scale)",
    )

    stats = sub.add_parser("stats", help="dataset statistics (Table 1)")
    stats.add_argument("--trace", required=True, type=Path)

    train = sub.add_parser("train", help="train the DarkVec embedding")
    train.add_argument("--trace", required=True, type=Path)
    train.add_argument("--out", required=True, type=Path)
    train.add_argument(
        "--service", choices=("single", "auto", "domain"), default="domain"
    )
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--vector-size", type=int, default=50)
    train.add_argument("--context", type=int, default=25)
    train.add_argument("--seed", type=int, default=1)
    train.add_argument(
        "--workers",
        type=int,
        default=1,
        help="training parallelism (1 = exact sequential, 0 = all cores)",
    )
    add_telemetry_flags(train)

    def add_run_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--trace", required=True, type=Path)
        cmd.add_argument(
            "--cache-dir",
            required=True,
            type=Path,
            help="artifact-store directory (created if missing)",
        )
        cmd.add_argument(
            "--state",
            type=Path,
            default=None,
            help="fitted-state directory (default: <cache-dir>/state)",
        )
        cmd.add_argument(
            "--service", choices=("single", "auto", "domain"), default="domain"
        )
        cmd.add_argument("--epochs", type=int, default=10)
        cmd.add_argument("--vector-size", type=int, default=50)
        cmd.add_argument("--context", type=int, default=25)
        cmd.add_argument("--seed", type=int, default=1)
        cmd.add_argument(
            "--workers",
            type=int,
            default=1,
            help="training parallelism (1 = exact sequential, 0 = all cores)",
        )
        cmd.add_argument(
            "--out",
            type=Path,
            default=None,
            help="also export the embedding as IP-keyed vectors",
        )
        add_ann_flags(cmd)
        add_scale_flags(cmd)
        add_telemetry_flags(cmd)

    run = sub.add_parser(
        "run",
        help="staged pipeline with a content-addressed artifact cache",
    )
    add_run_args(run)

    resume = sub.add_parser(
        "resume",
        help="re-run the staged pipeline, reusing cached stage artifacts",
    )
    add_run_args(resume)

    update = sub.add_parser(
        "update",
        help="append a day of traffic to a fitted state and refit warm",
    )
    update.add_argument(
        "--trace", required=True, type=Path, help="the new day's trace CSV"
    )
    update.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache directory whose <cache-dir>/state holds the fitted state",
    )
    update.add_argument(
        "--state",
        type=Path,
        default=None,
        help="fitted-state directory (overrides --cache-dir/state)",
    )
    update.add_argument(
        "--window-days",
        type=float,
        default=None,
        help="rolling training window (default: the state's config)",
    )
    update.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="warm-refit epochs (default: the state's update_epochs)",
    )
    update.add_argument(
        "--health-gate",
        action="store_true",
        help="refuse to persist the update when a health monitor fails "
        "(the previous state stays live; exit code 1)",
    )
    update.add_argument(
        "--labels",
        type=Path,
        default=None,
        help="ground-truth labels CSV enabling the LOO-accuracy probe "
        "monitor",
    )
    update.add_argument(
        "--pool-backend",
        choices=("thread", "process"),
        default=None,
        help="override the state's worker-pool backend for this update",
    )
    update.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="override the state's corpus/vocab shard size",
    )
    add_ann_override_flags(update)
    add_telemetry_flags(update)

    evaluate = sub.add_parser("evaluate", help="leave-one-out 7-NN report")
    evaluate.add_argument("--trace", required=True, type=Path)
    evaluate.add_argument("--vectors", required=True, type=Path)
    evaluate.add_argument("--labels", required=True, type=Path)
    evaluate.add_argument("--k", type=int, default=7)
    evaluate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="k-NN search parallelism (results are identical)",
    )
    add_ann_flags(evaluate)
    add_scale_flags(evaluate)
    add_telemetry_flags(evaluate)

    cluster = sub.add_parser("cluster", help="Louvain cluster discovery")
    cluster.add_argument("--trace", required=True, type=Path)
    cluster.add_argument("--vectors", required=True, type=Path)
    cluster.add_argument("--k-prime", type=int, default=3)
    cluster.add_argument("--min-size", type=int, default=5)
    cluster.add_argument("--top", type=int, default=20)
    cluster.add_argument(
        "--workers",
        type=int,
        default=1,
        help="k-NN search parallelism (results are identical)",
    )
    add_ann_flags(cluster)
    add_scale_flags(cluster)
    add_telemetry_flags(cluster)

    profile = sub.add_parser(
        "profile",
        help="run the full pipeline on a synthetic scenario and print "
        "a per-stage time/memory/throughput table",
    )
    profile.add_argument(
        "--preset",
        choices=("small", "medium"),
        default="small",
        help="scenario size: small (~seconds) or medium (~a minute)",
    )
    profile.add_argument("--epochs", type=int, default=10)
    profile.add_argument("--workers", type=int, default=1)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the telemetry trace (spans + metrics) as NDJSON",
    )
    add_live_flags(profile)
    profile.set_defaults(profile=True)

    top = sub.add_parser(
        "top",
        help="live dashboard tailing a --telemetry-out stream from "
        "another repro process",
    )
    top.add_argument(
        "--stream",
        type=Path,
        required=True,
        help="NDJSON telemetry stream written by --telemetry-out",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between screen refreshes (default 1.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render the latest frame once and exit (no screen clearing)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="exit after rendering this many refreshes",
    )

    def add_registry_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--cache-dir",
            type=Path,
            default=None,
            help="artifact-store directory (registry at <cache-dir>/registry)",
        )
        cmd.add_argument(
            "--registry",
            type=Path,
            default=None,
            help="registry directory (overrides --cache-dir)",
        )

    runs = sub.add_parser("runs", help="inspect the run registry")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="one line per recorded run")
    add_registry_args(runs_list)
    runs_show = runs_sub.add_parser("show", help="full detail of one run")
    runs_show.add_argument("run_id")
    runs_show.add_argument(
        "--quantiles",
        action="store_true",
        help="print sketch quantiles (p50/p95/p99) recorded for the run",
    )
    add_registry_args(runs_show)
    runs_compare = runs_sub.add_parser(
        "compare",
        help="per-stage timing and metric deltas between two runs",
    )
    runs_compare.add_argument("run_a", nargs="?", default=None)
    runs_compare.add_argument("run_b", nargs="?", default=None)
    runs_compare.add_argument(
        "--last",
        action="store_true",
        help="compare the two most recent runs",
    )
    runs_compare.add_argument(
        "--max-time-regression",
        type=float,
        default=None,
        help="exit 1 when wall time regressed by more than this fraction "
        "(e.g. 0.5 = 50%%)",
    )
    runs_compare.add_argument(
        "--max-accuracy-drop",
        type=float,
        default=None,
        help="exit 1 when LOO accuracy dropped by more than this",
    )
    add_registry_args(runs_compare)

    health = sub.add_parser(
        "health", help="latest health verdicts + monitor sparklines"
    )
    add_registry_args(health)
    health.add_argument(
        "--width", type=int, default=48, help="sparkline width in cells"
    )

    serve = sub.add_parser(
        "serve",
        help="streaming daemon: ingest micro-batches, answer queries "
        "from an atomically-swapped model snapshot",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache directory whose <cache-dir>/state holds the fitted state",
    )
    serve.add_argument(
        "--state",
        type=Path,
        default=None,
        help="fitted-state directory (overrides --cache-dir/state)",
    )
    serve.add_argument(
        "--labels",
        type=Path,
        default=None,
        help="ground-truth labels CSV: labels classify answers and "
        "enables the LOO-accuracy health monitor on every update",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (lets scripts "
        "connect without racing an ephemeral port)",
    )
    serve.add_argument(
        "--health-gate",
        action="store_true",
        help="gate every ingested batch on the health verdict (a fail "
        "rolls the model back and keeps the previous snapshot live)",
    )
    serve.add_argument(
        "--knn-k", type=int, default=7, help="neighbours used by classify"
    )
    serve.add_argument(
        "--clusters",
        dest="with_clusters",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="cache a Louvain partition per snapshot so `members` "
        "queries are O(1) (--no-clusters cuts promotion cost)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="ingest queue capacity; producers block past this",
    )
    serve.add_argument(
        "--token",
        default=None,
        help="shared secret required by mutating ops (ingest, shutdown); "
        "default leaves them open to any local process",
    )
    serve.add_argument(
        "--ingest-root",
        type=Path,
        default=None,
        help="confine path-based ingest to trace files under this "
        "directory (default: any server-readable path)",
    )
    serve.add_argument(
        "--save-state",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="persist the promoted model back to the state directory "
        "on clean shutdown",
    )
    add_ann_override_flags(serve)
    add_live_flags(serve)
    serve.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the telemetry trace (spans + metrics) as NDJSON "
        "after shutdown",
    )

    query = sub.add_parser(
        "query", help="query or feed a running `repro serve` daemon"
    )
    query.add_argument(
        "op",
        choices=(
            "ping",
            "status",
            "classify",
            "neighbors",
            "members",
            "ingest",
            "drain",
            "shutdown",
        ),
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument(
        "--port", type=int, default=None, help="daemon port"
    )
    query.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="read the daemon port from this file (waits for it)",
    )
    query.add_argument(
        "--ip",
        default=None,
        help="sender address for classify/neighbors/members; classify "
        "and neighbors accept a comma-separated list, answered by the "
        "daemon in one vectorized batch",
    )
    query.add_argument(
        "--k", type=int, default=None, help="neighbours (neighbors op)"
    )
    query.add_argument(
        "--sample",
        type=int,
        default=None,
        help="cluster members to list (members op)",
    )
    query.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="micro-batch trace CSV for the ingest op (the daemon "
        "reads the file, so the path must be visible to it)",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="seconds to wait (drain/shutdown ops)",
    )
    query.add_argument(
        "--token",
        default=None,
        help="shared secret for mutating ops on a --token'd daemon",
    )

    return parser


def _labels_path(trace_path: Path) -> Path:
    return trace_path.with_suffix(trace_path.suffix + ".labels.csv")


def _write_labels(path: Path, truth: GroundTruth) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["src_ip", "label"])
        for ip, label in sorted(truth.by_ip.items()):
            writer.writerow([ip_to_str(ip), label])


def _read_labels(path: Path) -> GroundTruth:
    truth = GroundTruth()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["src_ip", "label"]:
            raise ValueError(f"unexpected labels header: {header}")
        for ip_text, label in reader:
            truth.add_class(label, np.array([str_to_ip(ip_text)]))
    return truth


def _cmd_simulate(args) -> int:
    if args.config is not None:
        from repro.trace.config import scenario_from_json

        scenario = scenario_from_json(args.config)
    elif args.preset == "default":
        scenario = default_scenario(
            scale=args.scale, days=args.days, seed=args.seed
        )
    else:
        from repro.trace.presets import PRESETS

        scenario = PRESETS[args.preset](days=args.days, seed=args.seed)
    bundle = generate_trace(scenario)
    write_trace_csv(bundle.trace, args.out)
    labels_file = _labels_path(args.out)
    _write_labels(labels_file, bundle.truth)
    print(
        f"wrote {bundle.trace.n_packets} packets from "
        f"{bundle.trace.n_senders} senders to {args.out}"
    )
    print(f"wrote ground-truth labels to {labels_file}")
    return 0


def _cmd_stats(args) -> int:
    trace = read_trace_csv(args.trace)
    for name, window in (("full trace", trace), ("last day", trace.last_days(1.0))):
        stats = dataset_stats(window)
        top = "; ".join(
            f"{port}/tcp {share:.2f}%" for port, share, _ in stats.top_tcp_ports
        )
        print(
            f"{name}: {stats.n_sources} sources, {stats.n_packets} packets, "
            f"{stats.n_ports} ports, top TCP: {top}"
        )
    print(f"active senders (>=10 packets): {len(trace.active_senders(10))}")
    return 0


def _print_progress(event) -> None:
    """Epoch-line progress printer used when ``--profile`` is active."""
    loss = f" loss {event.loss:.3f}" if event.loss is not None else ""
    print(
        f"epoch {event.epoch + 1}/{event.total_epochs}: "
        f"{event.pairs_processed:,} pairs, "
        f"{event.pairs_per_second:,.0f} pairs/s, "
        f"eta {event.eta_seconds:.1f}s{loss}"
    )


def _cmd_train(args) -> int:
    trace = read_trace_csv(args.trace)
    config = DarkVecConfig(
        service=args.service,
        epochs=args.epochs,
        vector_size=args.vector_size,
        context=args.context,
        seed=args.seed,
        workers=args.workers,
    )
    progress = _print_progress if args.profile else None
    darkvec = DarkVec(config).fit(trace, progress=progress)
    embedding = darkvec.embedding
    assert embedding is not None and darkvec.corpus is not None
    # Persist keyed by IP address (sender indices are trace-specific).
    ips = trace.sender_ips[embedding.tokens].astype(np.int64)
    order = np.argsort(ips)
    KeyedVectors(tokens=ips[order], vectors=embedding.vectors[order]).save(
        args.out
    )
    print(
        f"trained on {darkvec.corpus.n_tokens} tokens; embedded "
        f"{len(embedding)} senders -> {args.out}"
    )
    return 0


def _export_ip_keyed(darkvec, out: Path) -> None:
    """Save the fitted embedding keyed by IP address (portable)."""
    trace, embedding = darkvec.trace, darkvec.embedding
    ips = trace.sender_ips[embedding.tokens].astype(np.int64)
    order = np.argsort(ips)
    KeyedVectors(tokens=ips[order], vectors=embedding.vectors[order]).save(out)


def _cmd_run(args) -> int:
    """Staged pipeline against the artifact store (also `repro resume`)."""
    trace = read_trace_csv(args.trace)
    config = DarkVecConfig(
        service=args.service,
        epochs=args.epochs,
        vector_size=args.vector_size,
        context=args.context,
        seed=args.seed,
        workers=args.workers,
        ann_backend=args.ann_backend,
        ann_nlist=args.ann_nlist,
        ann_nprobe=args.ann_nprobe,
        ann_pq_m=args.ann_pq_m,
        ann_pq_bits=args.ann_pq_bits,
        ann_hnsw_m=args.ann_hnsw_m,
        ann_hnsw_ef_build=args.ann_hnsw_ef_build,
        ann_hnsw_ef_search=args.ann_hnsw_ef_search,
        shard_size=args.shard_size,
        use_mmap=args.use_mmap,
        pool_backend=args.pool_backend,
        cache_dir=args.cache_dir,
    )
    progress = _print_progress if args.profile else None
    darkvec = DarkVec(config).fit(trace, progress=progress)
    rows = [
        [status.stage, status.status, f"{status.seconds:.2f}", status.fingerprint]
        for status in darkvec.stage_statuses
    ]
    print(format_table(["Stage", "Status", "Seconds", "Fingerprint"], rows))
    hits = sum(1 for s in darkvec.stage_statuses if s.status == "hit")
    print(
        f"{hits}/{len(darkvec.stage_statuses)} stages served from "
        f"{args.cache_dir}"
    )
    state_dir = args.state or args.cache_dir / "state"
    darkvec.save_state(state_dir)
    print(f"saved fitted state to {state_dir}")
    if darkvec.registry is not None:
        record = darkvec.registry.last()
        if record is not None:
            print(
                f"registry: recorded {record['run_id']} "
                f"({record['kind']}, code {record['code_version']})"
            )
    if args.out is not None:
        _export_ip_keyed(darkvec, args.out)
        print(f"exported {len(darkvec.embedding)} vectors to {args.out}")
    return 0


def _cmd_update(args) -> int:
    """Warm incremental retrain of a previously saved fitted state."""
    if args.state is not None:
        state_dir = args.state
    elif args.cache_dir is not None:
        state_dir = args.cache_dir / "state"
    else:
        print("update needs --state or --cache-dir", file=sys.stderr)
        return 2
    darkvec = DarkVec.load_state(state_dir)
    # Scale knobs may be overridden per invocation (e.g. run the nightly
    # update under the process backend on a bigger machine).
    overrides = _ann_overrides(args)
    if args.pool_backend is not None:
        overrides["pool_backend"] = args.pool_backend
    if args.shard_size is not None:
        overrides["shard_size"] = args.shard_size
    if overrides:
        from dataclasses import replace

        darkvec.config = replace(darkvec.config, **overrides)
    new_trace = read_trace_csv(args.trace)
    truth = _read_labels(args.labels) if args.labels is not None else None
    darkvec.update(
        new_trace,
        window_days=args.window_days,
        epochs=args.epochs,
        health_gate=True if args.health_gate else None,
        truth=truth,
    )
    report = darkvec.last_update
    print(
        f"appended {report.new_packets} packets, evicted "
        f"{report.evicted_packets} outside the rolling window"
    )
    print(
        f"sentences: {report.sentences_retained} retained, "
        f"{report.sentences_rebuilt} rebuilt, {report.sentences_evicted} evicted"
    )
    print(
        f"warm-started {report.warm_tokens} senders, "
        f"{report.new_tokens} new; refit took {report.seconds:.2f}s"
    )
    health = darkvec.last_health
    if health is not None:
        print(_monitor_table(health.monitors, title=f"Health: {health.verdict}"))
        if not health.promoted:
            print(
                "health gate refused promotion; previous state left "
                f"unchanged at {state_dir}"
            )
            return 1
    darkvec.save_state(state_dir)
    print(f"saved updated state to {state_dir}")
    return 0


def _load_embedding_for(trace, path: Path) -> KeyedVectors:
    """Load an IP-keyed embedding and re-key it by sender index."""
    keyed = KeyedVectors.load(path)
    positions = np.searchsorted(trace.sender_ips, keyed.tokens)
    positions = np.clip(positions, 0, max(trace.n_senders - 1, 0))
    hit = trace.sender_ips[positions.astype(int)] == keyed.tokens
    senders = positions[hit].astype(np.int64)
    order = np.argsort(senders)
    return KeyedVectors(
        tokens=senders[order], vectors=keyed.vectors[hit][order]
    )


def _ann_overrides(args) -> dict:
    """Collect the non-None ANN override flags of update/serve."""
    fields = (
        "ann_backend",
        "ann_nlist",
        "ann_nprobe",
        "ann_pq_m",
        "ann_pq_bits",
        "ann_hnsw_m",
        "ann_hnsw_ef_build",
        "ann_hnsw_ef_search",
    )
    return {
        f: getattr(args, f)
        for f in fields
        if getattr(args, f, None) is not None
    }


def _ann_spec_of(args):
    """Build the AnnSpec an evaluate/cluster invocation asked for."""
    from repro.ann.base import AnnSpec

    return AnnSpec(
        backend=args.ann_backend,
        nlist=args.ann_nlist,
        nprobe=args.ann_nprobe,
        pq_m=args.ann_pq_m,
        pq_bits=args.ann_pq_bits,
        hnsw_m=args.ann_hnsw_m,
        hnsw_ef_build=args.ann_hnsw_ef_build,
        hnsw_ef_search=args.ann_hnsw_ef_search,
    )


def _cmd_evaluate(args) -> int:
    from repro.parallel.pool import pool_backend

    trace = read_trace_csv(args.trace)
    truth = _read_labels(args.labels)
    embedding = _load_embedding_for(trace, args.vectors)
    labels = truth.labels_for(trace)[embedding.tokens]
    eval_senders = trace.last_days(1.0).observed_senders()
    rows = embedding.rows_of(eval_senders)
    rows = rows[rows >= 0]
    with pool_backend(args.pool_backend):
        predictions = leave_one_out_predictions(
            embedding.vectors,
            labels,
            rows,
            k=args.k,
            workers=args.workers,
            spec=_ann_spec_of(args),
        )
    report = classification_report(labels[rows], predictions)
    print(report.to_text(title=f"{args.k}-NN leave-one-out report"))
    return 0


def _cmd_cluster(args) -> int:
    trace = read_trace_csv(args.trace)
    embedding = _load_embedding_for(trace, args.vectors)
    from repro.graph.knn_graph import build_knn_graph
    from repro.graph.louvain import louvain_communities
    from repro.graph.modularity import modularity
    from repro.parallel.pool import pool_backend

    with pool_backend(args.pool_backend):
        graph = build_knn_graph(
            embedding.vectors,
            k_prime=args.k_prime,
            workers=args.workers,
            spec=_ann_spec_of(args),
        )
    adjacency = graph.symmetric_adjacency()
    communities = louvain_communities(adjacency, seed=0)
    score = modularity(adjacency, communities)
    silhouettes = cluster_silhouettes(embedding.vectors, communities)
    profiles = inspect_clusters(
        trace,
        embedding.tokens,
        communities,
        silhouettes=silhouettes,
        min_size=args.min_size,
    )
    print(
        f"{len(set(communities.tolist()))} clusters, modularity {score:.3f}"
    )
    rows = []
    for profile in profiles[: args.top]:
        top_ports = ", ".join(
            f"{name} ({share:.0%})" for name, share in profile.top_ports[:2]
        )
        rows.append(
            [
                f"C{profile.cluster_id}",
                profile.size,
                profile.n_ports,
                f"{profile.silhouette:.2f}",
                profile.n_subnets24,
                top_ports,
            ]
        )
    print(
        format_table(
            ["Cluster", "IPs", "Ports", "Sh", "/24s", "Top ports"], rows
        )
    )
    return 0


def _cmd_profile(args) -> int:
    """Full pipeline on a synthetic scenario, under full telemetry."""
    if args.preset == "medium":
        scenario = default_scenario(scale=0.05, days=10.0, seed=args.seed)
    else:
        scenario = default_scenario(scale=0.02, days=3.0, seed=args.seed)
    bundle = generate_trace(scenario)
    config = DarkVecConfig(epochs=args.epochs, workers=args.workers)
    darkvec = DarkVec(config).fit(bundle.trace, progress=_print_progress)
    report = darkvec.evaluate(bundle.truth, eval_days=None)
    result = darkvec.cluster()
    print(
        f"accuracy {report.accuracy:.3f}, {result.n_clusters} clusters, "
        f"modularity {result.modularity:.3f}"
    )
    return 0


def _registry_from(args):
    """Resolve the run registry from ``--registry`` / ``--cache-dir``."""
    from repro.obs.registry import RunRegistry

    if args.registry is not None:
        return RunRegistry(args.registry)
    if args.cache_dir is not None:
        return RunRegistry(Path(args.cache_dir) / "registry")
    print("need --registry or --cache-dir", file=sys.stderr)
    return None


def _monitor_table(monitors, title: str | None = None) -> str:
    """Render monitor results (dicts or MonitorResult) as a table."""
    rows = []
    for monitor in monitors:
        doc = monitor if isinstance(monitor, dict) else monitor.to_dict()
        value = doc["value"]
        arrow = "<=" if doc["direction"] == "low" else ">="
        rows.append(
            [
                doc["name"],
                "-" if value is None else f"{value:.4f}",
                doc["verdict"],
                f"{arrow}{doc['warn']:g}/{doc['fail']:g}",
                doc["detail"],
            ]
        )
    return format_table(
        ["Monitor", "Value", "Verdict", "Warn/Fail", "Detail"], rows, title=title
    )


def _run_verdict(record: dict) -> str:
    health = record.get("health") or {}
    return health.get("verdict", "-")


def _cmd_runs(args) -> int:
    """`repro runs list|show|compare` over the run registry."""
    import time as time_mod

    registry = _registry_from(args)
    if registry is None:
        return 2
    records = registry.runs()

    if args.runs_command == "list":
        rows = []
        for record in records:
            stages = record.get("stages") or []
            hits = sum(1 for s in stages if s.get("status") == "hit")
            accuracy = (record.get("extra") or {}).get("loo_accuracy")
            rows.append(
                [
                    record["run_id"],
                    record["kind"],
                    time_mod.strftime(
                        "%Y-%m-%d %H:%M:%S",
                        time_mod.localtime(record["unix_time"]),
                    ),
                    f"{record['wall_seconds']:.2f}",
                    f"{hits}/{len(stages)}" if stages else "-",
                    _run_verdict(record),
                    "-" if accuracy is None else f"{accuracy:.4f}",
                ]
            )
        print(
            format_table(
                ["Run", "Kind", "When", "Wall (s)", "Hits", "Health", "LOO acc"],
                rows,
            )
        )
        print(f"{len(records)} runs in {registry.path}")
        return 0

    if args.runs_command == "show":
        try:
            record = registry.get(args.run_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print(
            f"{record['run_id']} ({record['kind']}) — "
            f"code {record['code_version']}, "
            f"config {record['config_fingerprint']}, "
            f"wall {record['wall_seconds']:.2f}s"
        )
        stages = record.get("stages") or []
        if stages:
            rows = [
                [
                    s["stage"],
                    s["status"],
                    f"{s['seconds']:.2f}",
                    s["fingerprint"],
                ]
                for s in stages
            ]
            print(
                format_table(
                    ["Stage", "Status", "Seconds", "Fingerprint"],
                    rows,
                    title="Stages",
                )
            )
        health = record.get("health")
        if health:
            print(
                _monitor_table(
                    health["monitors"], title=f"Health: {health['verdict']}"
                )
            )
        if getattr(args, "quantiles", False):
            sketches = (record.get("metrics") or {}).get("sketches") or {}
            if sketches:
                print(
                    obs.format_quantile_table(
                        sketches, title="Latency quantiles (sketch)"
                    )
                )
            else:
                print(
                    "no sketch quantiles recorded for this run "
                    "(re-run with telemetry enabled, e.g. --metrics-out)"
                )
        extra = record.get("extra") or {}
        for key in sorted(extra):
            print(f"{key}: {extra[key]}")
        return 0

    # compare
    if args.last:
        if len(records) < 2:
            print("need at least two runs to compare", file=sys.stderr)
            return 2
        base, cand = records[-2], records[-1]
    else:
        if not args.run_a or not args.run_b:
            print(
                "compare needs two run ids (or --last)", file=sys.stderr
            )
            return 2
        try:
            base = registry.get(args.run_a)
            cand = registry.get(args.run_b)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    print(
        f"baseline {base['run_id']} ({base['kind']}, code "
        f"{base['code_version']}) vs candidate {cand['run_id']} "
        f"({cand['kind']}, code {cand['code_version']})"
    )
    wall_a, wall_b = base["wall_seconds"], cand["wall_seconds"]
    regression = (wall_b - wall_a) / wall_a if wall_a > 0 else 0.0
    rows = [["wall", f"{wall_a:.2f}", f"{wall_b:.2f}", f"{regression:+.1%}"]]
    stages_a = {s["stage"]: s for s in base.get("stages") or []}
    stages_b = {s["stage"]: s for s in cand.get("stages") or []}
    for stage in [*stages_a, *(s for s in stages_b if s not in stages_a)]:
        sec_a = stages_a.get(stage, {}).get("seconds")
        sec_b = stages_b.get(stage, {}).get("seconds")
        delta = (
            "-"
            if sec_a is None or sec_b is None
            else f"{sec_b - sec_a:+.2f}s"
        )
        rows.append(
            [
                f"  {stage}",
                "-" if sec_a is None else f"{sec_a:.2f}",
                "-" if sec_b is None else f"{sec_b:.2f}",
                delta,
            ]
        )
    print(
        format_table(
            ["Stage", "Base (s)", "Cand (s)", "Delta"], rows, title="Timing"
        )
    )

    metric_rows = []
    for scope in ("counters", "gauges"):
        values_a = (base.get("metrics") or {}).get(scope, {})
        values_b = (cand.get("metrics") or {}).get(scope, {})
        for name in sorted(set(values_a) | set(values_b)):
            a, b = values_a.get(name), values_b.get(name)
            delta = "-" if a is None or b is None else f"{b - a:+g}"
            metric_rows.append(
                [
                    name,
                    "-" if a is None else f"{a:g}",
                    "-" if b is None else f"{b:g}",
                    delta,
                ]
            )
    extra_a, extra_b = base.get("extra") or {}, cand.get("extra") or {}
    for name in sorted(set(extra_a) | set(extra_b)):
        a, b = extra_a.get(name), extra_b.get(name)
        numeric = isinstance(a, (int, float)) and isinstance(b, (int, float))
        metric_rows.append(
            [
                name,
                "-" if a is None else f"{a:g}" if numeric else str(a),
                "-" if b is None else f"{b:g}" if numeric else str(b),
                f"{b - a:+g}" if numeric else "-",
            ]
        )
    if metric_rows:
        print(
            format_table(
                ["Metric", "Base", "Cand", "Delta"],
                metric_rows,
                title="Metrics",
            )
        )

    code = 0
    if args.max_time_regression is not None and regression > args.max_time_regression:
        print(
            f"FAIL: wall time regressed {regression:+.1%} "
            f"(limit {args.max_time_regression:.1%})",
            file=sys.stderr,
        )
        code = 1
    acc_a, acc_b = extra_a.get("loo_accuracy"), extra_b.get("loo_accuracy")
    if (
        args.max_accuracy_drop is not None
        and acc_a is not None
        and acc_b is not None
        and acc_a - acc_b > args.max_accuracy_drop
    ):
        print(
            f"FAIL: LOO accuracy dropped {acc_a - acc_b:.4f} "
            f"(limit {args.max_accuracy_drop})",
            file=sys.stderr,
        )
        code = 1
    return code


def _cmd_health(args) -> int:
    """`repro health`: latest verdicts plus per-monitor sparklines."""
    from repro.utils.ascii_plot import sparkline

    registry = _registry_from(args)
    if registry is None:
        return 2
    records = registry.runs()
    latest = next(
        (r for r in reversed(records) if r.get("health")), None
    )
    if latest is None:
        print(f"no health records in {registry.path}")
        return 0
    health = latest["health"]
    print(
        f"latest: {latest['run_id']} ({latest['kind']}) — "
        f"verdict {health['verdict']}, "
        f"{'promoted' if health.get('promoted', True) else 'NOT promoted'}"
    )
    print(_monitor_table(health["monitors"]))
    names = []
    for record in records:
        for monitor in (record.get("health") or {}).get("monitors", []):
            if monitor["name"] not in names:
                names.append(monitor["name"])
    rows = []
    for name in names:
        series = registry.monitor_series(name)
        if not series:
            continue
        rows.append(
            [
                name,
                sparkline(series, width=args.width),
                f"{series[-1]:.4f}",
            ]
        )
    walls = [r["wall_seconds"] for r in records]
    if walls:
        rows.append(
            ["wall_seconds", sparkline(walls, width=args.width), f"{walls[-1]:.2f}"]
        )
    if rows:
        print(
            format_table(
                ["Series", "History", "Latest"], rows, title="Monitor history"
            )
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Tail a ``--telemetry-out`` stream and render a live dashboard."""
    import time as time_mod

    from repro.obs.live import read_frames, render_frame

    stream: Path = args.stream
    offset = 0
    frame = None
    prev = None
    rss_history: list[float] = []
    rendered = 0
    clear = "\x1b[2J\x1b[H"  # ANSI: clear screen, cursor home
    try:
        while True:
            if stream.exists():
                frames, offset = read_frames(stream, offset)
                for new in frames:
                    if frame is not None:
                        prev = frame
                    frame = new
                    rss = (new.get("proc") or {}).get("rss")
                    if rss:
                        rss_history.append(float(rss))
            if args.once:
                if frame is None:
                    print(f"no frames in {stream}", file=sys.stderr)
                    return 2
                print(render_frame(frame, prev, rss_history))
                return 0
            if frame is not None:
                sys.stdout.write(clear + render_frame(frame, prev, rss_history))
                sys.stdout.write("\n")
                sys.stdout.flush()
                rendered += 1
                if args.frames is not None and rendered >= args.frames:
                    return 0
            elif not stream.exists():
                sys.stdout.write(f"waiting for {stream} ...\r")
                sys.stdout.flush()
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_serve(args) -> int:
    """`repro serve`: run the streaming daemon until a shutdown op."""
    from repro.serve import DarkVecService, ServeServer

    if args.state is not None:
        state_dir = args.state
    elif args.cache_dir is not None:
        state_dir = args.cache_dir / "state"
    else:
        print("serve needs --state or --cache-dir", file=sys.stderr)
        return 2
    darkvec = DarkVec.load_state(state_dir)
    overrides = _ann_overrides(args)
    if overrides:
        from dataclasses import replace

        darkvec.config = replace(darkvec.config, **overrides)
    truth = _read_labels(args.labels) if args.labels is not None else None
    service = DarkVecService(
        darkvec,
        truth=truth,
        health_gate=True if args.health_gate else None,
        knn_k=args.knn_k,
        with_clusters=args.with_clusters,
        max_pending=args.max_pending,
    )
    server = ServeServer(
        service,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        token=args.token,
        ingest_root=args.ingest_root,
    )
    print(
        f"serving model v0 ({len(service.snapshot)} senders) on "
        f"{args.host}:{server.port} — stop with `repro query shutdown "
        f"--port {server.port}`",
        flush=True,
    )
    try:
        server.serve_until_shutdown()
    except KeyboardInterrupt:
        print("interrupted; draining writer", flush=True)
        service.close()
        server.server_close()
    status = service.status()
    print(
        f"served model v{status['version']}: {status['batches']} batches, "
        f"{status['promotions']} promotions, {status['rollbacks']} rollbacks"
    )
    if args.save_state and service.promotions > 0:
        darkvec.save_state(state_dir)
        print(f"saved promoted state to {state_dir}")
    return 0


def _cmd_query(args) -> int:
    """`repro query`: one JSON round trip against a serve daemon."""
    import json

    from repro.serve import ServeClient

    needs_ip = {"classify", "neighbors", "members"}
    if args.op in needs_ip and args.ip is None:
        print(f"{args.op} needs --ip", file=sys.stderr)
        return 2
    if args.port_file is not None:
        client = ServeClient.from_port_file(
            args.port_file, host=args.host, token=args.token
        )
    elif args.port is not None:
        client = ServeClient(host=args.host, port=args.port, token=args.token)
    else:
        print("query needs --port or --port-file", file=sys.stderr)
        return 2
    with client:
        if args.op == "ingest":
            if args.trace is None:
                print("ingest needs --trace", file=sys.stderr)
                return 2
            response = client.ingest_path(args.trace.resolve())
        elif args.op in needs_ip:
            ip = args.ip
            if args.op in ("classify", "neighbors") and "," in ip:
                ip = [part.strip() for part in ip.split(",") if part.strip()]
            fields = {"ip": ip}
            if args.op == "neighbors":
                fields["k"] = args.k
            if args.op == "members":
                fields["sample"] = args.sample
            response = client.call(args.op, **fields)
        elif args.op in ("drain", "shutdown"):
            response = client.call(args.op, timeout=args.timeout)
        else:
            response = client.call(args.op)
    response.pop("ok", None)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "run": _cmd_run,
    "resume": _cmd_run,
    "update": _cmd_update,
    "evaluate": _cmd_evaluate,
    "cluster": _cmd_cluster,
    "profile": _cmd_profile,
    "top": _cmd_top,
    "runs": _cmd_runs,
    "health": _cmd_health,
    "serve": _cmd_serve,
    "query": _cmd_query,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    When ``--metrics-out``, ``--profile`` or ``--telemetry-out`` is
    given, the command runs inside a telemetry session; afterwards the
    trace is exported as NDJSON and/or the per-stage table is printed.
    ``--telemetry-out`` additionally runs a background flusher that
    streams live frames while the command executes, so a second
    process can watch with ``repro top``.  Without any of the flags
    the no-op recorder stays installed and nothing is measured.
    """
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    metrics_out = getattr(args, "metrics_out", None)
    profiling = getattr(args, "profile", False)
    telemetry_out = getattr(args, "telemetry_out", None)
    if metrics_out is None and not profiling and telemetry_out is None:
        return handler(args)
    telemetry = obs.Telemetry(profile_memory=profiling)
    sink = None
    if telemetry_out is not None:
        sink = obs.TelemetrySink(
            telemetry,
            telemetry_out,
            prom_path=getattr(args, "prom_out", None),
            interval=getattr(args, "telemetry_interval", 1.0),
        )
    with obs.session(telemetry):
        if sink is not None:
            sink.start()
        try:
            code = handler(args)
        finally:
            if sink is not None:
                sink.stop()
    if profiling:
        print()
        print(obs.format_stage_table(telemetry, title="Pipeline stages"))
        print()
        print(obs.format_counters_table(telemetry))
        sketches = telemetry.snapshot().get("sketches") or {}
        if sketches:
            print()
            print(
                obs.format_quantile_table(
                    sketches, title="Latency quantiles (sketch)"
                )
            )
    if metrics_out is not None:
        obs.write_metrics_ndjson(telemetry, metrics_out)
        print(f"wrote telemetry NDJSON to {metrics_out}")
    if telemetry_out is not None:
        print(f"streamed live telemetry to {telemetry_out}")
    return code


if __name__ == "__main__":
    sys.exit(main())
