"""The Section 4 baseline: top-port traffic fractions + cosine 7-NN.

For each class the top-5 destination ports (by packets) are extracted;
the union of those sets is the feature space.  Each sender is described
by the fraction of its traffic towards each feature port — a biased
feature set that intentionally favours the ground-truth classes, and
still loses badly to the embedding (Table 6 vs Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import ClassificationReport, classification_report
from repro.labels.groundtruth import GroundTruth
from repro.services.ports import format_port, port_keys
from repro.trace.packet import Trace


class PortFeatureClassifier:
    """Port-histogram features with leave-one-out k-NN evaluation."""

    def __init__(self, k: int = 7, top_ports_per_class: int = 5) -> None:
        if k < 1 or top_ports_per_class < 1:
            raise ValueError("k and top_ports_per_class must be positive")
        self.k = k
        self.top_ports_per_class = top_ports_per_class
        self.feature_keys: np.ndarray | None = None

    def select_features(
        self, trace: Trace, labels: np.ndarray, senders: np.ndarray
    ) -> np.ndarray:
        """Union of each class's top ports, as packed (port, proto) keys."""
        keys = port_keys(trace.ports, trace.protos)
        selected: set[int] = set()
        for name in sorted(set(labels[senders])):
            class_senders = senders[labels[senders] == name]
            member = np.zeros(trace.n_senders, dtype=bool)
            member[class_senders] = True
            class_keys = keys[member[trace.senders]]
            uniq, counts = np.unique(class_keys, return_counts=True)
            order = np.argsort(counts)[::-1][: self.top_ports_per_class]
            selected.update(int(k) for k in uniq[order])
        self.feature_keys = np.array(sorted(selected), dtype=np.int64)
        return self.feature_keys

    def feature_matrix(self, trace: Trace, senders: np.ndarray) -> np.ndarray:
        """Per-sender traffic fraction to each feature port."""
        if self.feature_keys is None:
            raise RuntimeError("call select_features first")
        senders = np.asarray(senders, dtype=np.int64)
        keys = port_keys(trace.ports, trace.protos)
        positions = np.searchsorted(self.feature_keys, keys)
        positions = np.clip(positions, 0, len(self.feature_keys) - 1)
        hit = self.feature_keys[positions] == keys

        row_of = np.full(trace.n_senders, -1, dtype=np.int64)
        row_of[senders] = np.arange(len(senders))
        rows = row_of[trace.senders]
        keep = (rows >= 0) & hit
        matrix = np.zeros((len(senders), len(self.feature_keys)))
        np.add.at(matrix, (rows[keep], positions[keep]), 1.0)

        totals = np.bincount(
            trace.senders, minlength=trace.n_senders
        )[senders].astype(float)
        totals[totals == 0] = 1.0
        return matrix / totals[:, None]

    def evaluate(
        self, trace: Trace, truth: GroundTruth, senders: np.ndarray
    ) -> ClassificationReport:
        """Leave-one-out evaluation on ``senders`` (Table 6 protocol)."""
        senders = np.asarray(senders, dtype=np.int64)
        labels = truth.labels_for(trace)
        self.select_features(trace, labels, senders)
        features = self.feature_matrix(trace, senders)
        sender_labels = labels[senders]
        predictions = leave_one_out_predictions(
            features, sender_labels, np.arange(len(senders)), k=self.k
        )
        return classification_report(sender_labels, predictions)

    def feature_names(self) -> list[str]:
        """Human-readable names of the selected feature ports."""
        if self.feature_keys is None:
            raise RuntimeError("call select_features first")
        return [format_port(int(k) // 256, int(k) % 256) for k in self.feature_keys]
