"""IP2VEC baseline (Ring et al., Appendix A.2.2).

IP2VEC embeds *all* flow fields into one space.  For every flow it
emits five (target, context) token pairs (Figure 17):

    (src_ip, dst_ip), (src_ip, dst_port), (src_ip, proto),
    (dst_port, dst_ip), (proto, dst_ip)

and trains skip-gram with negative sampling on the raw pairs.  Senders
are then compared through their ``src_ip`` token vectors.  The paper's
scalability complaint — no activity filter, pairs proportional to the
full packet count — is inherent to this construction and reproduced
here; a ``max_pairs`` guard lets the benchmark report "did not finish".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import ClassificationReport, classification_report
from repro.labels.groundtruth import GroundTruth
from repro.trace.packet import Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec

# Token namespaces: field tag in the high bits, value in the low bits.
_SHIFT = 33
_SRC, _DST, _PORT, _PROTO = 0, 1, 2, 3


class Ip2VecDidNotFinish(RuntimeError):
    """Raised when the configured pair budget is exceeded."""


def _tag(namespace: int, values: np.ndarray) -> np.ndarray:
    return (np.int64(namespace) << _SHIFT) | values.astype(np.int64)


@dataclass
class Ip2Vec:
    """IP2VEC trainer/evaluator.

    ``flow_timeout`` switches the input granularity from packets to
    aggregated flows (the original paper works on flows); ``None``
    treats every packet as a flow, which is what a darknet's one-sided
    SYN traffic effectively is.  ``workers`` is forwarded to
    :class:`~repro.w2v.model.Word2Vec`; the pair stream is extremely
    repetitive, so the parallel engine's deduplication pays off most
    here.
    """

    vector_size: int = 50
    epochs: int = 10
    negative: int = 5
    seed: int = 1
    max_pairs: int | None = None
    flow_timeout: float | None = None
    workers: int = 1

    def _records(
        self, trace: Trace
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(senders, receivers, ports, protos) per flow record."""
        if self.flow_timeout is None:
            return trace.senders, trace.receivers, trace.ports, trace.protos
        from repro.trace.flows import aggregate_flows

        flows = aggregate_flows(trace, timeout=self.flow_timeout)
        return flows.senders, flows.receivers, flows.ports, flows.protos

    def pair_count(self, trace: Trace) -> int:
        """Training pairs IP2VEC generates for ``trace`` (5 per flow)."""
        return 5 * len(self._records(trace)[0])

    def build_pairs(self, trace: Trace) -> tuple[np.ndarray, np.ndarray]:
        """The five (target, context) token pairs per flow."""
        senders, receivers, ports, protos = self._records(trace)
        src = _tag(_SRC, senders)
        dst = _tag(_DST, receivers)
        port = _tag(_PORT, ports)
        proto = _tag(_PROTO, protos)
        targets = np.concatenate([src, src, src, port, proto])
        contexts = np.concatenate([dst, port, proto, dst, dst])
        return targets, contexts

    def fit_sender_vectors(self, trace: Trace) -> KeyedVectors:
        """Train on the pair stream; return src_ip vectors by sender.

        Raises:
            Ip2VecDidNotFinish: when ``max_pairs`` is exceeded.
        """
        count = self.pair_count(trace)
        if self.max_pairs is not None and count > self.max_pairs:
            raise Ip2VecDidNotFinish(
                f"IP2VEC generates {count} pairs, over the budget of "
                f"{self.max_pairs}"
            )
        targets, contexts = self.build_pairs(trace)
        model = Word2Vec(
            vector_size=self.vector_size,
            negative=self.negative,
            epochs=self.epochs,
            seed=self.seed,
            workers=self.workers,
        )
        keyed = model.fit_pairs(targets, contexts)
        # Keep only the src_ip tokens, re-keyed by sender index.
        is_src = (keyed.tokens >> _SHIFT) == _SRC
        senders = (keyed.tokens[is_src] & ((1 << _SHIFT) - 1)).astype(np.int64)
        order = np.argsort(senders)
        return KeyedVectors(
            tokens=senders[order], vectors=keyed.vectors[is_src][order]
        )

    def evaluate(
        self,
        trace: Trace,
        truth: GroundTruth,
        eval_senders: np.ndarray,
        k: int = 7,
    ) -> ClassificationReport:
        """LOO evaluation with the Table 3 protocol."""
        keyed = self.fit_sender_vectors(trace)
        labels = truth.labels_for(trace)[keyed.tokens]
        rows = keyed.rows_of(np.asarray(eval_senders, dtype=np.int64))
        rows = rows[rows >= 0]
        predictions = leave_one_out_predictions(keyed.vectors, labels, rows, k=k)
        return classification_report(labels[rows], predictions)
