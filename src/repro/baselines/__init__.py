"""Baselines the paper compares against.

* :mod:`repro.baselines.port_features` — the Section 4 feature-based
  7-NN classifier (Table 6).
* :mod:`repro.baselines.dante` — DANTE (Cohen et al.): per-sender port
  sentences, one embedding language per (sender, receiver) pair.
* :mod:`repro.baselines.ip2vec` — IP2VEC (Ring et al.): flow-field
  token pairs trained with negative sampling.
* :mod:`repro.baselines.bipartite` — sender-port bipartite graph with
  Louvain (Soro et al., the paper's reference [39]).
"""

from repro.baselines.bipartite import BipartiteCommunities, bipartite_communities
from repro.baselines.dante import Dante
from repro.baselines.ip2vec import Ip2Vec
from repro.baselines.port_features import PortFeatureClassifier

__all__ = [
    "BipartiteCommunities",
    "Dante",
    "Ip2Vec",
    "PortFeatureClassifier",
    "bipartite_communities",
]
