"""DANTE baseline (Cohen et al., Appendix A.2.1).

DANTE inverts DarkVec's roles: destination *ports* are the words and
every (sender, receiver) pair is an independent language with its own
sentence and its own Word2Vec model.  A sender's embedding is the
average of the embeddings of the ports it targeted.

The per-language training is the scalability killer the paper measures
(Table 3: ~7 billion skip-grams, training did not finish in ten days).
This implementation is faithful — including the lack of a sender
activity filter — and exposes a ``skipgram_count`` estimator plus a
``max_skipgrams`` guard so benchmarks can report "does not scale"
without actually burning days.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.document import _one_sided_pairs
from repro.parallel.pool import WorkerPool
from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import ClassificationReport, classification_report
from repro.labels.groundtruth import GroundTruth
from repro.services.ports import port_keys
from repro.trace.packet import Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec


class DanteDidNotFinish(RuntimeError):
    """Raised when the configured skip-gram budget is exceeded."""


@dataclass
class Dante:
    """DANTE trainer/evaluator.

    Attributes:
        vector_size, context, epochs, negative, seed: Word2Vec knobs.
        per_receiver: one language per (sender, receiver) pair (the
            faithful setting); ``False`` merges each sender's traffic
            into a single language.
        max_skipgrams: abort with :class:`DanteDidNotFinish` when the
            corpus exceeds this budget (``None`` disables the guard).
        workers: per-sender models are independent, so they train
            concurrently on a worker pool (0 = all cores).  Each model
            is seeded per sender, so the result is identical for every
            ``workers`` value.
    """

    vector_size: int = 50
    context: int = 25
    epochs: int = 10
    negative: int = 5
    seed: int = 1
    per_receiver: bool = True
    max_skipgrams: int | None = None
    workers: int = 1

    def _languages(self, trace: Trace) -> dict[int, list[np.ndarray]]:
        """Sender -> list of port-token sentences (one per language)."""
        tokens = port_keys(trace.ports, trace.protos)
        if self.per_receiver:
            group = trace.senders.astype(np.int64) * 256 + trace.receivers
        else:
            group = trace.senders.astype(np.int64)
        order = np.argsort(group, kind="stable")
        group_sorted = group[order]
        tokens_sorted = tokens[order]
        boundaries = np.flatnonzero(np.diff(group_sorted) != 0)
        starts = np.concatenate([[0], boundaries + 1])
        ends = np.concatenate([boundaries + 1, [len(group_sorted)]])
        by_sender: dict[int, list[np.ndarray]] = {}
        for lo, hi in zip(starts, ends):
            sender = int(group_sorted[lo] // 256) if self.per_receiver else int(
                group_sorted[lo]
            )
            by_sender.setdefault(sender, []).append(tokens_sorted[lo:hi])
        return by_sender

    def skipgram_count(self, trace: Trace) -> int:
        """Skip-grams DANTE's corpus generates (Table 3's count)."""
        languages = self._languages(trace)
        total = 0
        for sentences in languages.values():
            for sentence in sentences:
                total += 2 * _one_sided_pairs(len(sentence), self.context)
        return total

    def fit_sender_vectors(self, trace: Trace) -> KeyedVectors:
        """Train one model per language; average port vectors per sender.

        Raises:
            DanteDidNotFinish: when ``max_skipgrams`` is exceeded.
        """
        if self.max_skipgrams is not None:
            count = self.skipgram_count(trace)
            if count > self.max_skipgrams:
                raise DanteDidNotFinish(
                    f"DANTE corpus holds {count} skip-grams, over the "
                    f"budget of {self.max_skipgrams}"
                )
        languages = self._languages(trace)
        senders = np.array(sorted(languages), dtype=np.int64)
        vectors = np.zeros((len(senders), self.vector_size), dtype=np.float32)

        def train_sender(item: tuple[int, int]) -> np.ndarray | None:
            row, sender = item
            sentences = languages[int(sender)]
            # Each language corpus is tiny, so the per-model trainer
            # stays sequential; parallelism comes from training the
            # independent languages concurrently.
            model = Word2Vec(
                vector_size=self.vector_size,
                context=self.context,
                negative=self.negative,
                epochs=self.epochs,
                seed=self.seed + row,
                workers=1,
            )
            keyed = model.fit(sentences)
            if len(keyed):
                # The sender is represented by the mean embedding of the
                # ports it contacted, weighted by how often it did.
                flat = np.concatenate(sentences)
                rows = keyed.rows_of(flat)
                rows = rows[rows >= 0]
                if len(rows):
                    return keyed.vectors[rows].mean(axis=0)
            return None

        with WorkerPool(self.workers) as pool:
            results = pool.map(train_sender, list(enumerate(senders)))
        for row, vector in enumerate(results):
            if vector is not None:
                vectors[row] = vector
        return KeyedVectors(tokens=senders, vectors=vectors)

    def evaluate(
        self,
        trace: Trace,
        truth: GroundTruth,
        eval_senders: np.ndarray,
        k: int = 7,
    ) -> ClassificationReport:
        """LOO evaluation with the Table 3 protocol."""
        keyed = self.fit_sender_vectors(trace)
        labels = truth.labels_for(trace)[keyed.tokens]
        rows = keyed.rows_of(np.asarray(eval_senders, dtype=np.int64))
        rows = rows[rows >= 0]
        predictions = leave_one_out_predictions(keyed.vectors, labels, rows, k=k)
        return classification_report(labels[rows], predictions)
