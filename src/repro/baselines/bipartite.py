"""Bipartite sender-port graph clustering (Soro et al., MedComNet'20).

The related-work approach the paper cites as [39]: model darknet
traffic as a bipartite graph between senders and the (port, protocol)
pairs they target, run Louvain community detection on it, and read the
sender communities off the partition.  Unlike DarkVec this uses no
temporal information at all, which is exactly what the comparison
benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.services.ports import port_keys
from repro.trace.packet import Trace


@dataclass
class BipartiteCommunities:
    """Result of the bipartite clustering.

    Attributes:
        senders: sender indices that appear in the graph.
        communities: community id per entry of ``senders``.
        modularity: Louvain modularity of the full bipartite partition.
        n_ports: number of port nodes in the graph.
    """

    senders: np.ndarray
    communities: np.ndarray
    modularity: float
    n_ports: int

    @property
    def n_clusters(self) -> int:
        return len(np.unique(self.communities)) if len(self.communities) else 0


def bipartite_communities(
    trace: Trace,
    senders: np.ndarray | None = None,
    weight: str = "log",
    seed: int = 0,
) -> BipartiteCommunities:
    """Cluster senders through the sender-port bipartite graph.

    Args:
        trace: packet trace.
        senders: sender indices to include; defaults to the active
            senders (>= 10 packets).
        weight: ``"log"`` (1 + log packets, dampening heavy hitters,
            as in the original paper) or ``"count"``.
        seed: Louvain seed.
    """
    if weight not in ("log", "count"):
        raise ValueError("weight must be 'log' or 'count'")
    if senders is None:
        senders = trace.active_senders(10)
    senders = np.asarray(senders, dtype=np.int64)
    sub = trace.from_senders(senders)
    if not len(sub):
        return BipartiteCommunities(
            senders=senders,
            communities=np.zeros(len(senders), dtype=np.int64),
            modularity=0.0,
            n_ports=0,
        )

    # Aggregate (sender, port) edge weights.
    keys = sub.senders.astype(np.int64) * 2**24 + port_keys(sub.ports, sub.protos)
    uniq, counts = np.unique(keys, return_counts=True)
    edge_senders = (uniq // 2**24).astype(np.int64)
    edge_ports = (uniq % 2**24).astype(np.int64)

    sender_ids, sender_index = np.unique(edge_senders, return_inverse=True)
    port_ids, port_index = np.unique(edge_ports, return_inverse=True)
    n_senders, n_ports = len(sender_ids), len(port_ids)

    weights = counts.astype(float)
    if weight == "log":
        weights = 1.0 + np.log(weights)

    adjacency: list[dict[int, float]] = [
        dict() for _ in range(n_senders + n_ports)
    ]
    for s, p, w in zip(sender_index, port_index + n_senders, weights):
        s, p, w = int(s), int(p), float(w)
        adjacency[s][p] = adjacency[s].get(p, 0.0) + w
        adjacency[p][s] = adjacency[p].get(s, 0.0) + w

    communities = louvain_communities(adjacency, seed=seed)
    score = modularity(adjacency, communities)

    # Map back: community per requested sender (absent senders get -1).
    by_sender = {int(s): int(c) for s, c in zip(sender_ids, communities)}
    assigned = np.array(
        [by_sender.get(int(s), -1) for s in senders], dtype=np.int64
    )
    return BipartiteCommunities(
        senders=senders,
        communities=assigned,
        modularity=score,
        n_ports=n_ports,
    )
