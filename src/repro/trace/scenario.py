"""Default simulation scenario mirroring the paper's trace.

Populations, port profiles and temporal behaviours follow Table 2
(ground-truth classes) and Table 5 (coordinated unknown groups).  A
``scale`` knob shrinks the large populations while keeping the small
classes at full size, so class proportions and per-class behaviour stay
faithful at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.actors import ActorGroup, PortProfile
from repro.trace.address import AddressSpace
from repro.trace.packet import ICMP, SECONDS_PER_DAY, TCP, UDP
from repro.trace.schedule import (
    BurstSchedule,
    ChurnSchedule,
    CompositeSchedule,
    ContinuousSchedule,
    DesyncPeriodicSchedule,
    GatedSchedule,
    PeriodicSchedule,
    RampSchedule,
    SparseSchedule,
    StaggeredSchedule,
)
from repro.utils.rng import make_rng

#: 2021-03-02 00:00:00 UTC, the first day of the paper's collection.
TRACE_START = 1_614_643_200.0

#: Population sizes below this are never scaled down.
_SCALE_FLOOR = 110


@dataclass
class Scenario:
    """A renderable simulation scenario.

    Attributes:
        actors: coordinated sender groups.
        n_backscatter: number of sub-threshold one-shot senders.
        t_start: trace start (seconds since epoch).
        days: trace duration in days.
        seed: master seed for all randomness.
    """

    actors: list[ActorGroup]
    n_backscatter: int
    t_start: float = TRACE_START
    days: float = 30.0
    seed: int = 7

    def __post_init__(self) -> None:
        names = [actor.name for actor in self.actors]
        if len(set(names)) != len(names):
            raise ValueError("actor names must be unique")
        if self.days <= 0:
            raise ValueError("scenario duration must be positive")
        if self.n_backscatter < 0:
            raise ValueError("n_backscatter must be non-negative")

    @property
    def t_end(self) -> float:
        return self.t_start + self.days * SECONDS_PER_DAY

    def actor(self, name: str) -> ActorGroup:
        """Look an actor up by name."""
        for actor in self.actors:
            if actor.name == name:
                return actor
        raise KeyError(f"no actor named {name!r}")


def scaled(n: int, scale: float) -> int:
    """Scale a population size, keeping small groups at full size."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if n <= _SCALE_FLOOR:
        return n
    return max(_SCALE_FLOOR, round(n * scale))


def default_scenario(
    scale: float = 0.15,
    days: float = 30.0,
    seed: int = 7,
    backscatter_scale: float | None = None,
) -> Scenario:
    """Build the scenario reproducing the paper's population structure.

    Args:
        scale: shrink factor for the large populations (Mirai, ADB worm,
            SSH bots, unstructured unknowns); groups of <= 110 senders
            keep their paper size.
        days: trace duration; the paper uses 30.
        seed: master seed (addresses, schedules, ports).
        backscatter_scale: separate shrink factor for the one-shot noise
            population; defaults to ``scale``.
    """
    space = AddressSpace(make_rng(seed + 1))
    tail_rng = make_rng(seed + 2)
    if backscatter_scale is None:
        backscatter_scale = scale

    # All scanner tails draw from shared pools of commonly-scanned
    # ports.  This matters for fidelity: in a real darknet the classes
    # overlap heavily in *which* ports they probe (everyone hits the
    # usual suspects) and differ mainly in traffic shares and timing —
    # which is exactly why port-histogram baselines and IP2VEC
    # underperform DarkVec's temporal co-occurrence signal.
    tcp_pool = list(PortProfile.random_tail(tail_rng, 1200, TCP))
    udp_pool = list(PortProfile.random_tail(tail_rng, 220, UDP, high=20_000))

    def tcp_tail(n: int) -> tuple[tuple[int, int], ...]:
        idx = tail_rng.choice(len(tcp_pool), size=min(n, len(tcp_pool)), replace=False)
        return tuple(tcp_pool[i] for i in np.sort(idx))

    def udp_tail(n: int) -> tuple[tuple[int, int], ...]:
        idx = tail_rng.choice(len(udp_pool), size=min(n, len(udp_pool)), replace=False)
        return tuple(udp_pool[i] for i in np.sort(idx))

    actors: list[ActorGroup] = []

    # ------------------------------------------------------------------
    # GT1 Mirai-like botnet: 7 351 senders, 89.6% of traffic to
    # 23/TCP, scattered addresses, continuous churn, Mirai fingerprint.
    # ------------------------------------------------------------------
    mirai_tail = tcp_tail(70)
    actors.append(
        ActorGroup(
            name="mirai",
            label="Mirai-like",
            addresses=space.allocate_scattered(scaled(7351, scale)),
            # Individual bots churn; the botnet scans in coordinated
            # daily waves (the temporal fingerprint DarkVec exploits).
            schedule=GatedSchedule(
                ChurnSchedule(rate_per_day=5.5, mean_lifetime_days=12.0),
                period_days=1.0,
                duty=0.55,
                phase=0.30,
            ),
            profile=PortProfile(
                head=(
                    (23, TCP, 0.896),
                    (2323, TCP, 0.039),
                    (5555, TCP, 0.017),
                    (26, TCP, 0.013),
                    (9530, TCP, 0.0084),
                ),
                tail_ports=mirai_tail,
            ),
            mirai_probability=1.0,
        )
    )

    # ------------------------------------------------------------------
    # GT2 Censys: 336 senders from a few known subnets, > 11 000 target
    # ports, seven staggered scanner shifts (Figure 12) over a low
    # continuous baseline.  Each shift owns its port slice (the paper
    # measures an inter-shift Jaccard index of 0.19).
    # ------------------------------------------------------------------
    n_censys = scaled(336, scale)
    n_shifts = 7
    censys_head = (
        (5060, TCP, 0.034),
        (2000, TCP, 0.029),
        (443, TCP, 0.004),
        (445, TCP, 0.004),
        (5432, TCP, 0.004),
    )
    shared = tcp_tail(40)
    shift_profiles = []
    for _ in range(n_shifts):
        own = tcp_tail(160)
        shift_profiles.append(PortProfile(head=censys_head, tail_ports=shared + own))
    actors.append(
        ActorGroup(
            name="censys",
            label="Censys",
            addresses=space.allocate_multi_subnet24(n_censys, 2),
            schedule=CompositeSchedule(
                StaggeredSchedule(n_subgroups=n_shifts, rate_per_active_day=40.0),
                ContinuousSchedule(rate_per_day=4.0),
            ),
            subgroup_profiles=tuple(shift_profiles),
        )
    )

    # ------------------------------------------------------------------
    # GT3 Stretchoid: 104 senders, irregular incoherent activity
    # (Figure 9a) — the class the embedding cannot pin down.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="stretchoid",
            label="Stretchoid",
            addresses=space.allocate_multi_subnet24(104, 4),
            schedule=SparseSchedule(
                events_per_sender=45.0,
                packets_per_event=2.5,
                shared_anchor_prob=0.25,
                n_anchors=60,
                jitter_s=900.0,
            ),
            profile=PortProfile(
                head=(
                    (22, TCP, 0.035),
                    (443, TCP, 0.035),
                    (21, TCP, 0.027),
                    (9200, TCP, 0.027),
                    (139, TCP, 0.018),
                ),
                tail_ports=tcp_tail(86),
            ),
        )
    )

    # ------------------------------------------------------------------
    # GT4 Internet Census: 103 senders, daily periodic coordinated
    # scans over ~230 ports, mixed TCP/UDP head.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="internet_census",
            label="Internet-census",
            addresses=space.allocate_subnet24(103),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.5, rate_per_active_day=8.0, phase=0.1
            ),
            profile=PortProfile(
                head=(
                    (5060, TCP, 0.104),
                    (161, UDP, 0.098),
                    (2000, TCP, 0.077),
                    (443, TCP, 0.065),
                    (53, UDP, 0.029),
                ),
                tail_ports=tcp_tail(226),
            ),
        )
    )

    # ------------------------------------------------------------------
    # GT5 BinaryEdge: 101 senders, 21 ports, periodic coordinated.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="binaryedge",
            label="Binaryedge",
            addresses=space.allocate_multi_subnet24(101, 3),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.4, rate_per_active_day=7.0, phase=0.55
            ),
            profile=PortProfile(
                head=(
                    (15, TCP, 0.10),
                    (3000, TCP, 0.096),
                    (4222, TCP, 0.067),
                    (587, TCP, 0.066),
                    (9100, TCP, 0.058),
                ),
                tail_ports=tcp_tail(16),
            ),
        )
    )

    # ------------------------------------------------------------------
    # GT6 Sharashka: 50 senders, near-uniform share over 485 ports.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="sharashka",
            label="Sharashka",
            addresses=space.allocate_subnet24(50),
            schedule=PeriodicSchedule(
                period_days=2.0, duty=0.45, rate_per_active_day=12.0, phase=0.25
            ),
            profile=PortProfile.uniform(
                list(tcp_tail(485))
            ),
        )
    )

    # ------------------------------------------------------------------
    # GT7 Ipip: 49 senders, 41.5% of traffic to 5060/TCP plus an ICMP
    # share — the head overlaps Censys/Internet-census, which is why the
    # paper sees low precision for this class.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="ipip",
            label="Ipip",
            addresses=space.allocate_subnet24(49),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.8, rate_per_active_day=15.0, phase=0.45
            ),
            profile=PortProfile(
                head=(
                    (5060, TCP, 0.415),
                    (0, ICMP, 0.109),
                    (8000, TCP, 0.023),
                    (8888, TCP, 0.021),
                    (22, TCP, 0.021),
                ),
                tail_ports=tcp_tail(36),
            ),
        )
    )

    # ------------------------------------------------------------------
    # GT8 Shodan: 23 senders, 349 ports with an almost flat share.
    # ------------------------------------------------------------------
    shodan_tail = tcp_tail(344)
    actors.append(
        ActorGroup(
            name="shodan",
            label="Shodan",
            addresses=space.allocate_multi_subnet24(23, 5),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.6, rate_per_active_day=33.0, phase=0.7
            ),
            profile=PortProfile(
                head=(
                    (443, TCP, 0.009),
                    (80, TCP, 0.009),
                    (2222, TCP, 0.009),
                    (2000, TCP, 0.007),
                    (2087, TCP, 0.007),
                ),
                tail_ports=shodan_tail,
            ),
        )
    )

    # ------------------------------------------------------------------
    # GT9 Engin-Umich: 10 senders, DNS only, short coordinated bursts
    # (Figure 9b).  One burst is pinned to the final day so the class is
    # present in the evaluation set.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="engin_umich",
            label="Engin-umich",
            addresses=space.allocate_subnet24(10),
            schedule=BurstSchedule(
                n_bursts=max(int(days / 5), 2),
                burst_duration_s=1800.0,
                packets_per_burst=9.0,
                include_final_day=True,
            ),
            profile=PortProfile(head=((53, UDP, 1.0),)),
        )
    )

    # ------------------------------------------------------------------
    # Shadowserver (Table 5, C25/C29/C37): 113 senders in one /16,
    # three sub-groups that share a port set but differ in intensity.
    # Unlabeled: the paper only discovered them through clustering.
    # ------------------------------------------------------------------
    shadow_ips = space.allocate_subnet16(113)
    shadow_tail = udp_tail(45)
    shadow_splits = np.array_split(np.arange(113), [61, 61 + 36])
    shadow_profiles = (
        PortProfile(head=((623, UDP, 0.10), (123, UDP, 0.10)), tail_ports=shadow_tail),
        PortProfile(
            head=((5683, UDP, 0.125), (3389, UDP, 0.125)), tail_ports=shadow_tail
        ),
        PortProfile(
            head=((111, UDP, 0.315), (137, UDP, 0.315)), tail_ports=shadow_tail
        ),
    )
    for idx, (split, profile) in enumerate(zip(shadow_splits, shadow_profiles)):
        actors.append(
            ActorGroup(
                name=f"shadowserver_c{idx}",
                label=None,
                addresses=shadow_ips[split],
                schedule=PeriodicSchedule(
                    period_days=1.0, duty=0.7, rate_per_active_day=7.0, phase=0.62
                ),
                profile=profile,
            )
        )

    # ------------------------------------------------------------------
    # unknown1: NetBIOS scanner, 85 addresses in one /24, 60% of
    # packets to 137/UDP with a very regular pattern (Figure 14).
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown1_netbios",
            label=None,
            addresses=space.allocate_subnet24(85),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.3, rate_per_active_day=23.0, phase=0.8
            ),
            profile=PortProfile(
                head=((137, UDP, 0.60),),
                tail_ports=udp_tail(17),
            ),
        )
    )

    # ------------------------------------------------------------------
    # unknown2: SMTP scanner, 10 addresses in one cloud /24, 76% of
    # traffic to 25/TCP.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown2_smtp",
            label=None,
            addresses=space.allocate_subnet24(10),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.6, rate_per_active_day=9.0, phase=0.85
            ),
            profile=PortProfile(
                head=((25, TCP, 0.76),),
                tail_ports=tcp_tail(11),
            ),
        )
    )

    # ------------------------------------------------------------------
    # unknown3: SMB scanner, 61 addresses over 23 /24s, 99.5% of
    # traffic to 445/TCP, regular temporal pattern.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown3_smb",
            label=None,
            addresses=space.allocate_multi_subnet24(61, 23),
            schedule=PeriodicSchedule(
                period_days=0.5, duty=0.4, rate_per_active_day=15.0, phase=0.3
            ),
            profile=PortProfile(
                head=((445, TCP, 0.995),),
                tail_ports=tcp_tail(4),
            ),
        )
    )

    # ------------------------------------------------------------------
    # unknown4: ADB worm, 525 senders ramping up through the month
    # (Figure 15), 75% of traffic to 5555/TCP.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown4_adb",
            label=None,
            addresses=space.allocate_scattered(scaled(525, scale)),
            schedule=RampSchedule(rate_per_day=25.0, growth=3.0),
            profile=PortProfile(
                head=((5555, TCP, 0.75),),
                tail_ports=tcp_tail(140),
            ),
        )
    )

    # ------------------------------------------------------------------
    # unknown5 complement: Mirai-behaving senders WITHOUT the
    # fingerprint (29% of cluster C18 in Table 5).  They cluster with
    # GT1 but stay out of the ground truth.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="mirai_nofp",
            label=None,
            # Sized relative to the fingerprinted Mirai population (~5%
            # of cluster C18 senders lack the fingerprint in the paper),
            # not floor-clamped — a larger share would visibly dent the
            # Mirai-like precision, which the paper reports as 1.00.
            addresses=space.allocate_scattered(max(round(410 * scale), 30)),
            schedule=GatedSchedule(
                ChurnSchedule(rate_per_day=5.5, mean_lifetime_days=12.0),
                period_days=1.0,
                duty=0.55,
                phase=0.30,
            ),
            profile=PortProfile(
                head=((23, TCP, 0.877), (2323, TCP, 0.02), (2000, UDP, 0.01)),
                tail_ports=mirai_tail,
            ),
            mirai_probability=0.0,
        )
    )

    # ------------------------------------------------------------------
    # unknown6: SSH brute-force bots, 623 senders, 88% to 22/TCP.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown6_ssh",
            label=None,
            addresses=space.allocate_scattered(scaled(623, scale)),
            schedule=GatedSchedule(
                ChurnSchedule(rate_per_day=11.0, mean_lifetime_days=15.0),
                period_days=0.75,
                duty=0.55,
                phase=0.10,
            ),
            profile=PortProfile(
                head=((22, TCP, 0.88),),
                tail_ports=tcp_tail(115),
            ),
        )
    )

    # ------------------------------------------------------------------
    # unknown7: horizontal scanner, 158 senders, equal share over 148
    # ports, daily regular pattern.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown7_horizontal",
            label=None,
            addresses=space.allocate_multi_subnet24(scaled(158, scale), 6),
            schedule=PeriodicSchedule(
                period_days=1.0, duty=0.35, rate_per_active_day=10.0, phase=0.4
            ),
            profile=PortProfile.uniform(
                list(tcp_tail(148))
            ),
        )
    )

    # ------------------------------------------------------------------
    # unknown8: small scanner, 22 senders, equal share over 69 ports,
    # regular (roughly hourly) pattern.
    # ------------------------------------------------------------------
    actors.append(
        ActorGroup(
            name="unknown8_small",
            label=None,
            addresses=space.allocate_subnet24(22),
            schedule=PeriodicSchedule(
                period_days=1.0 / 6.0, duty=0.5, rate_per_active_day=20.0
            ),
            profile=PortProfile.uniform(
                list(tcp_tail(69))
            ),
        )
    )

    # ------------------------------------------------------------------
    # Unstructured active unknowns: misconfigured hosts, lone scanners
    # and infected machines probing the usual suspects.  They share the
    # ground-truth classes' favourite ports — which is what drags
    # purely port-based methods (IP2VEC, the §4 baseline) down on real
    # darknet data — but have no temporal coordination whatsoever.
    # The mix keeps the Unknown row of Table 2 (445 and 5555 on top).
    # ------------------------------------------------------------------
    n_noise = scaled(10_400, scale)
    # Mimic themes reuse the *exact head profile* of a ground-truth
    # class (looked up from the actors defined above); the remaining
    # themes cover the popular ports of the Unknown row of Table 2.
    # Each mimic sender is port-indistinguishable from the class it
    # shadows — only the missing temporal coordination tells them
    # apart, which is DarkVec's edge over port-histogram methods.
    # (target actor, mimic population relative to the target's size,
    # schedule builder).  Each mimic schedule copies the target's rate,
    # period and duty — identical per-sender volume and rhythm — but
    # with a random phase per sender (or no shared anchors), so group
    # coordination is the ONLY statistic separating mimics from their
    # class.  Sizing mimics relative to their class keeps every class
    # port-confusable regardless of the overall scale.
    mimic_of = {
        "noise_like_mirai": (
            "mirai",
            0.30,
            lambda: ChurnSchedule(rate_per_day=3.0, mean_lifetime_days=12.0),
        ),
        "noise_like_censys": (
            "censys",
            0.80,
            lambda: ContinuousSchedule(rate_per_day=9.7),
        ),
        "noise_like_stretchoid": (
            "stretchoid",
            0.80,
            lambda: SparseSchedule(events_per_sender=45.0, packets_per_event=2.5),
        ),
        "noise_like_census": (
            "internet_census",
            0.80,
            lambda: DesyncPeriodicSchedule(1.0, 0.5, 8.0),
        ),
        "noise_like_binaryedge": (
            "binaryedge",
            0.80,
            lambda: DesyncPeriodicSchedule(1.0, 0.4, 7.0),
        ),
        "noise_like_sharashka": (
            "sharashka",
            0.80,
            lambda: DesyncPeriodicSchedule(2.0, 0.45, 12.0),
        ),
        "noise_like_ipip": (
            "ipip",
            0.80,
            lambda: DesyncPeriodicSchedule(1.0, 0.8, 15.0),
        ),
        "noise_like_shodan": (
            "shodan",
            1.50,
            lambda: DesyncPeriodicSchedule(1.0, 0.6, 33.0),
        ),
        "noise_like_engin": (
            "engin_umich",
            2.00,
            lambda: SparseSchedule(events_per_sender=6.0, packets_per_event=9.0),
        ),
    }
    plain_themes: tuple[tuple[str, float, tuple[tuple[int, int, float], ...]], ...] = (
        ("noise_smb", 0.16, ((445, TCP, 0.75),)),
        ("noise_adb", 0.16, ((5555, TCP, 0.75),)),
        ("noise_ssh", 0.08, ((22, TCP, 0.75),)),
        ("noise_db", 0.08, ((1433, TCP, 0.4), (6379, TCP, 0.2), (123, UDP, 0.15))),
    )
    by_name = {actor.name: actor for actor in actors}
    for mimic_name, (target, ratio, make_schedule) in mimic_of.items():
        target_actor = by_name[target]
        if target_actor.profile is not None:
            base_head = target_actor.profile.head
            base_tail = target_actor.profile.tail_ports
        else:
            # Multi-profile targets (Censys shifts): mimic the union.
            base_head = target_actor.subgroup_profiles[0].head
            base_tail = tuple(
                sorted(
                    {
                        port
                        for shift in target_actor.subgroup_profiles
                        for port in shift.tail_ports
                    }
                )
            )
        count = max(round(target_actor.n_senders * ratio), 5)
        actors.append(
            ActorGroup(
                name=mimic_name,
                label=None,
                addresses=space.allocate_scattered(count),
                schedule=make_schedule(),
                # Same head AND same tail ports as the shadowed class:
                # port-indistinguishable, temporally uncoordinated.
                profile=PortProfile(head=base_head, tail_ports=base_tail),
            )
        )
    for theme_name, fraction, head in plain_themes:
        count = max(round(n_noise * fraction), 5)
        actors.append(
            ActorGroup(
                name=theme_name,
                label=None,
                addresses=space.allocate_scattered(count),
                schedule=ChurnSchedule(rate_per_day=2.0, mean_lifetime_days=10.0),
                profile=PortProfile(head=head, tail_ports=tcp_tail(300)),
            )
        )

    # Per-sender profile heterogeneity: each member of a fleet probes
    # its own slice of the group's tail ports with jittered head
    # weights.  Without this, per-sender port histograms are unrealis-
    # tically uniform within a class and purely port-based methods
    # (IP2VEC, the §4 baseline) look far stronger than they do on real
    # darknet data.
    heterogeneity: dict[str, tuple[float, float]] = {
        "mirai": (0.35, 0.40),
        "censys": (0.30, 0.30),
        "stretchoid": (0.30, 0.30),
        "internet_census": (0.35, 0.30),
        "binaryedge": (0.50, 0.30),
        "sharashka": (0.30, 0.0),
        "ipip": (0.35, 0.30),
        "shodan": (0.35, 0.30),
        "shadowserver_c0": (0.40, 0.30),
        "shadowserver_c1": (0.40, 0.30),
        "shadowserver_c2": (0.40, 0.30),
        "unknown1_netbios": (0.40, 0.30),
        "unknown2_smtp": (0.40, 0.30),
        "unknown3_smb": (0.50, 0.20),
        "unknown4_adb": (0.30, 0.40),
        "mirai_nofp": (0.35, 0.40),
        "unknown6_ssh": (0.30, 0.40),
        "unknown7_horizontal": (0.45, 0.0),
        "unknown8_small": (0.55, 0.0),
    }
    heterogeneity.update({mimic_name: (0.35, 0.40) for mimic_name in mimic_of})
    heterogeneity.update(
        {theme_name: (0.03, 0.50) for theme_name, _, _ in plain_themes}
    )
    for actor in actors:
        if actor.name in heterogeneity:
            actor.tail_fraction, actor.head_jitter = heterogeneity[actor.name]
        # Heavy-tailed per-sender volumes for every population: packet
        # counts vary by orders of magnitude within a class in real
        # traces, so volume must not be a clean class fingerprint.
        actor.volume_sigma = 0.9

    n_backscatter = max(round(110_000 * backscatter_scale), 0)
    return Scenario(
        actors=actors,
        n_backscatter=n_backscatter,
        t_start=TRACE_START,
        days=days,
        seed=seed,
    )


# Mapping from actor name to the paper's cluster naming (Table 5), used
# by the cluster-inspection benches to title their output.
PAPER_GROUP_NOTES: dict[str, str] = {
    "censys": "Censys known scanner (7 staggered shifts, Fig. 12)",
    "shadowserver_c0": "Shadowserver C25 (623/udp + 123/udp)",
    "shadowserver_c1": "Shadowserver C29 (5683/udp + 3389/udp)",
    "shadowserver_c2": "Shadowserver C37 (111/udp + 137/udp)",
    "unknown1_netbios": "unknown1 NetBIOS scanner, one /24 (Fig. 14)",
    "unknown2_smtp": "unknown2 SMTP scanner, one cloud /24",
    "unknown3_smb": "unknown3 SMB scanner, 23 /24s",
    "unknown4_adb": "unknown4 ADB worm (Fig. 15)",
    "mirai_nofp": "unknown5 Mirai-like without fingerprint",
    "unknown6_ssh": "unknown6 SSH brute-force",
    "unknown7_horizontal": "unknown7 horizontal scanner",
    "unknown8_small": "unknown8 small regular scanner",
}
