"""Scan actors: coordinated groups of senders with a port profile.

An :class:`ActorGroup` couples *who* (an address pool), *when* (a
:class:`~repro.trace.schedule.Schedule`) and *what* (a
:class:`PortProfile`).  Rendering an actor yields raw packet events that
the generator merges into a :class:`~repro.trace.packet.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.packet import ICMP, TCP, UDP
from repro.trace.schedule import Schedule
from repro.utils.rng import child_rng


@dataclass(frozen=True)
class PortProfile:
    """Distribution over destination (port, protocol) pairs.

    ``head`` lists explicit heavy hitters as ``(port, proto, weight)``;
    the remaining probability mass is spread uniformly over
    ``tail_ports``.  This mirrors how Table 2 reports each class: a few
    named top ports plus a long tail.
    """

    head: tuple[tuple[int, int, float], ...] = ()
    tail_ports: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        head_weight = sum(weight for _, _, weight in self.head)
        if head_weight > 1.0 + 1e-9:
            raise ValueError(f"head weights sum to {head_weight} > 1")
        if head_weight < 1.0 - 1e-9 and not self.tail_ports:
            raise ValueError("head weights below 1 require tail ports")
        for port, proto, weight in self.head:
            _validate_port(port, proto)
            if weight < 0:
                raise ValueError("head weights must be non-negative")
        for port, proto in self.tail_ports:
            _validate_port(port, proto)

    @property
    def n_ports(self) -> int:
        """Number of distinct (port, proto) pairs the profile can emit."""
        pairs = {(p, pr) for p, pr, _ in self.head} | set(self.tail_ports)
        return len(pairs)

    def sample(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` (ports, protos) pairs."""
        ports = np.empty(n, dtype=np.int32)
        protos = np.empty(n, dtype=np.uint8)
        head_weight = sum(weight for _, _, weight in self.head)
        tail_weight = max(1.0 - head_weight, 0.0)
        choices = len(self.head) + (1 if self.tail_ports else 0)
        probs = [weight for _, _, weight in self.head]
        if self.tail_ports:
            probs.append(tail_weight)
        probs_arr = np.array(probs)
        probs_arr = probs_arr / probs_arr.sum()
        picks = rng.choice(choices, size=n, p=probs_arr)
        for idx, (port, proto, _) in enumerate(self.head):
            mask = picks == idx
            ports[mask] = port
            protos[mask] = proto
        if self.tail_ports:
            mask = picks == len(self.head)
            count = int(mask.sum())
            if count:
                tail = rng.integers(0, len(self.tail_ports), size=count)
                tail_arr = np.array(self.tail_ports, dtype=np.int64)
                ports[mask] = tail_arr[tail, 0]
                protos[mask] = tail_arr[tail, 1]
        return ports, protos

    @staticmethod
    def uniform(ports: list[tuple[int, int]]) -> "PortProfile":
        """Equal share over an explicit port set (unknown7/unknown8)."""
        return PortProfile(head=(), tail_ports=tuple(ports))

    @staticmethod
    def random_tail(
        rng: np.random.Generator,
        n_ports: int,
        proto: int = TCP,
        low: int = 1,
        high: int = 65_535,
    ) -> tuple[tuple[int, int], ...]:
        """A deterministic random set of tail ports for a profile."""
        if n_ports > high - low:
            raise ValueError("tail larger than port range")
        ports = rng.choice(np.arange(low, high), size=n_ports, replace=False)
        return tuple((int(p), proto) for p in np.sort(ports))


def _validate_port(port: int, proto: int) -> None:
    if proto not in (TCP, UDP, ICMP):
        raise ValueError(f"unsupported protocol {proto}")
    if proto == ICMP:
        if port != 0:
            raise ValueError("ICMP pseudo-port must be 0")
    elif not 0 <= port <= 65_535:
        raise ValueError(f"port {port} out of range")


@dataclass
class ActorGroup:
    """A coordinated population of senders.

    Attributes:
        name: unique group identifier (e.g. ``"censys"``).
        label: ground-truth class name, or ``None`` when the group is
            part of the Unknown class (Table 5 groups, noise).
        addresses: uint32 sender addresses of the group.
        schedule: temporal behaviour of the group.
        profile: port distribution (used when no subgroup profiles).
        subgroup_profiles: optional per-subgroup port profiles; the
            subgroup of each sender comes from ``schedule.subgroups``.
        mirai_probability: fraction of senders carrying the Mirai
            fingerprint in all their packets.
        tail_fraction: fraction of the group's tail ports each *sender*
            actually probes (its own random slice).  Real scanner
            fleets divide the port space between hosts, so individual
            port histograms differ within a class even though the
            group-level distribution matches the profile.
        head_jitter: lognormal sigma perturbing each sender's head
            weights (0 disables), for the same reason.
        volume_sigma: lognormal sigma of per-sender traffic volume.
            Each sender keeps only a random fraction of its scheduled
            events, giving the heavy-tailed per-sender packet counts
            real traces show; without it, packet volume becomes an
            artificially clean class fingerprint.
    """

    name: str
    label: str | None
    addresses: np.ndarray
    schedule: Schedule
    profile: PortProfile | None = None
    subgroup_profiles: tuple[PortProfile, ...] = field(default=())
    mirai_probability: float = 0.0
    tail_fraction: float = 1.0
    head_jitter: float = 0.0
    volume_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.profile is None and not self.subgroup_profiles:
            raise ValueError(f"actor {self.name}: needs a profile")
        if not 0.0 <= self.mirai_probability <= 1.0:
            raise ValueError("mirai_probability must be in [0, 1]")
        if len(self.addresses) == 0:
            raise ValueError(f"actor {self.name}: needs at least one sender")
        if not 0.0 < self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")
        if self.head_jitter < 0.0:
            raise ValueError("head_jitter must be non-negative")
        if self.volume_sigma < 0.0:
            raise ValueError("volume_sigma must be non-negative")

    @property
    def n_senders(self) -> int:
        return len(self.addresses)

    def sender_subgroups(self) -> np.ndarray:
        """Sub-cluster assignment of each sender."""
        return self.schedule.subgroups(self.n_senders)

    def render(
        self,
        rng: np.random.Generator,
        t_start: float,
        t_end: float,
    ) -> dict[str, np.ndarray]:
        """Generate the raw packet events of this group.

        Returns a dict of aligned columns: ``times``, ``ips``,
        ``ports``, ``protos``, ``mirai``.
        """
        schedule_rng = child_rng(rng, self.name, "schedule")
        port_rng = child_rng(rng, self.name, "ports")
        flag_rng = child_rng(rng, self.name, "mirai")
        per_sender_times = self.schedule.sample(
            schedule_rng, t_start, t_end, self.n_senders
        )
        subgroups = self.sender_subgroups()
        fingerprinted = flag_rng.random(self.n_senders) < self.mirai_probability

        times_chunks, ip_chunks = [], []
        port_chunks, proto_chunks, mirai_chunks = [], [], []
        volume_rng = child_rng(rng, self.name, "volume")
        keep_fractions = (
            np.minimum(
                volume_rng.lognormal(0.0, self.volume_sigma, self.n_senders), 1.0
            )
            if self.volume_sigma > 0
            else np.ones(self.n_senders)
        )
        for i, times in enumerate(per_sender_times):
            times = np.asarray(times)
            if keep_fractions[i] < 1.0 and len(times):
                times = times[volume_rng.random(len(times)) < keep_fractions[i]]
            count = len(times)
            if count == 0:
                continue
            profile = self._sender_profile(self._profile_for(subgroups[i]), port_rng)
            ports, protos = profile.sample(port_rng, count)
            times_chunks.append(np.asarray(times, dtype=np.float64))
            ip_chunks.append(np.full(count, self.addresses[i], dtype=np.uint32))
            port_chunks.append(ports)
            proto_chunks.append(protos)
            mirai_chunks.append(np.full(count, fingerprinted[i], dtype=bool))
        if not times_chunks:
            return {
                "times": np.empty(0),
                "ips": np.empty(0, dtype=np.uint32),
                "ports": np.empty(0, dtype=np.int32),
                "protos": np.empty(0, dtype=np.uint8),
                "mirai": np.empty(0, dtype=bool),
            }
        return {
            "times": np.concatenate(times_chunks),
            "ips": np.concatenate(ip_chunks),
            "ports": np.concatenate(port_chunks),
            "protos": np.concatenate(proto_chunks),
            "mirai": np.concatenate(mirai_chunks),
        }

    def _profile_for(self, subgroup: int) -> PortProfile:
        if self.subgroup_profiles:
            return self.subgroup_profiles[subgroup % len(self.subgroup_profiles)]
        assert self.profile is not None
        return self.profile

    def _sender_profile(
        self, base: PortProfile, rng: np.random.Generator
    ) -> PortProfile:
        """Derive one sender's personal realisation of the group profile."""
        if self.tail_fraction >= 1.0 and self.head_jitter == 0.0:
            return base
        head = base.head
        if self.head_jitter > 0.0 and head:
            weights = np.array([w for _, _, w in head])
            total = weights.sum()
            # Jitter both the relative head weights and the head/tail
            # split (the latter only when a tail exists to absorb it).
            if base.tail_ports:
                total = min(
                    total * rng.lognormal(0.0, self.head_jitter / 2), 0.99
                )
            jittered = weights * rng.lognormal(0.0, self.head_jitter, len(weights))
            if jittered.sum() > 0:
                jittered *= total / jittered.sum()
            head = tuple(
                (port, proto, float(w))
                for (port, proto, _), w in zip(head, jittered)
            )
        tail = base.tail_ports
        if self.tail_fraction < 1.0 and len(tail) > 1:
            keep = max(int(round(len(tail) * self.tail_fraction)), 1)
            idx = rng.choice(len(tail), size=keep, replace=False)
            tail = tuple(tail[i] for i in np.sort(idx))
        return PortProfile(head=head, tail_ports=tail)
