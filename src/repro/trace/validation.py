"""Trace sanity checking for externally supplied data.

Traces read from CSV/NDJSON files produced by other tools can violate
the invariants the pipeline assumes (time order, port ranges, known
protocols).  ``validate_trace`` collects every violation instead of
failing on the first, so operators can fix a capture in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.packet import ICMP, TCP, UDP, Trace

_KNOWN_PROTOS = (TCP, UDP, ICMP)


@dataclass
class ValidationReport:
    """Outcome of a trace validation pass."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_text(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"trace validation: {'OK' if self.ok else 'FAILED'}"]
        lines.extend(f"  error: {message}" for message in self.errors)
        lines.extend(f"  warning: {message}" for message in self.warnings)
        return "\n".join(lines)


def validate_trace(trace: Trace, max_span_days: float = 366.0) -> ValidationReport:
    """Check a trace against the pipeline's invariants.

    Errors break the pipeline (unsorted times, invalid ports/protocols,
    dangling sender indices); warnings flag suspicious but workable
    data (huge time spans, ICMP packets with non-zero ports, senders
    without packets).
    """
    report = ValidationReport()
    n = len(trace)
    if n == 0:
        report.warnings.append("trace is empty")
        return report

    if np.any(np.diff(trace.times) < 0):
        report.errors.append("timestamps are not sorted")
    if not np.isfinite(trace.times).all():
        report.errors.append("non-finite timestamps present")

    if trace.ports.min() < 0 or trace.ports.max() > 65_535:
        report.errors.append("destination ports outside [0, 65535]")

    unknown_protos = set(np.unique(trace.protos).tolist()) - set(_KNOWN_PROTOS)
    if unknown_protos:
        report.errors.append(
            f"unknown protocol numbers: {sorted(unknown_protos)}"
        )

    if len(trace.senders) and (
        trace.senders.min() < 0 or trace.senders.max() >= trace.n_senders
    ):
        report.errors.append("sender index out of range of the sender table")

    if len(trace.sender_ips) > 1 and np.any(np.diff(trace.sender_ips) <= 0):
        report.errors.append("sender table is not sorted/unique")

    icmp_with_port = (trace.protos == ICMP) & (trace.ports != 0)
    if icmp_with_port.any():
        report.warnings.append(
            f"{int(icmp_with_port.sum())} ICMP packets carry a non-zero port"
        )

    span_days = trace.duration_days
    if span_days > max_span_days:
        report.warnings.append(
            f"trace spans {span_days:.0f} days (> {max_span_days:.0f})"
        )

    silent = trace.n_senders - len(trace.observed_senders())
    if silent:
        report.warnings.append(f"{silent} table entries have no packets")

    return report
