"""Ready-made scenario variants beyond the paper's default.

The default scenario mirrors the paper's population; these presets
give library users smaller or differently-shaped darknets for demos,
tests and robustness studies:

* :func:`minimal_scenario` — three contrasting actors, seconds to run;
* :func:`worm_outbreak_scenario` — a dominant ADB-style worm ramping
  up over a quiet background (the Figure 15 story in isolation);
* :func:`quiet_scenario` — backscatter and uncoordinated noise only,
  for false-positive studies (what does the pipeline "discover" when
  there is nothing to discover?).
"""

from __future__ import annotations

from repro.trace.actors import ActorGroup, PortProfile
from repro.trace.address import AddressSpace
from repro.trace.packet import TCP, UDP
from repro.trace.scenario import TRACE_START, Scenario
from repro.trace.schedule import (
    BurstSchedule,
    ChurnSchedule,
    GatedSchedule,
    RampSchedule,
)
from repro.utils.rng import make_rng


def minimal_scenario(days: float = 5.0, seed: int = 7) -> Scenario:
    """Three contrasting actors: a botnet, a burst scanner, noise.

    Small enough for interactive experimentation (about a thousand
    senders, tens of thousands of packets) while still exercising the
    full pipeline: coordination, impulsiveness and noise.
    """
    space = AddressSpace(make_rng(seed + 1))
    tail_rng = make_rng(seed + 2)
    tail = PortProfile.random_tail(tail_rng, 60, TCP, low=1024)

    actors = [
        ActorGroup(
            name="botnet",
            label="Mirai-like",
            addresses=space.allocate_scattered(300),
            schedule=GatedSchedule(
                ChurnSchedule(rate_per_day=12.0, mean_lifetime_days=5.0),
                period_days=1.0,
                duty=0.45,
                phase=0.2,
            ),
            profile=PortProfile(head=((23, TCP, 0.9),), tail_ports=tail),
            mirai_probability=1.0,
            volume_sigma=0.8,
        ),
        ActorGroup(
            name="burst_scanner",
            label="Engin-umich",
            addresses=space.allocate_subnet24(10),
            schedule=BurstSchedule(
                n_bursts=max(int(days), 2),
                burst_duration_s=1800.0,
                packets_per_burst=10.0,
                include_final_day=True,
            ),
            profile=PortProfile(head=((53, UDP, 1.0),)),
        ),
        ActorGroup(
            name="noise",
            label=None,
            addresses=space.allocate_scattered(400),
            schedule=ChurnSchedule(rate_per_day=3.0, mean_lifetime_days=3.0),
            profile=PortProfile(
                head=((445, TCP, 0.3), (23, TCP, 0.2)), tail_ports=tail
            ),
            tail_fraction=0.1,
            head_jitter=0.5,
            volume_sigma=0.8,
        ),
    ]
    return Scenario(
        actors=actors,
        n_backscatter=800,
        t_start=TRACE_START,
        days=days,
        seed=seed,
    )


def worm_outbreak_scenario(days: float = 10.0, seed: int = 7) -> Scenario:
    """A single worm spreading over an otherwise quiet darknet."""
    space = AddressSpace(make_rng(seed + 1))
    tail_rng = make_rng(seed + 2)
    actors = [
        ActorGroup(
            name="worm",
            label=None,
            addresses=space.allocate_scattered(600),
            schedule=RampSchedule(rate_per_day=20.0, growth=4.0),
            profile=PortProfile(
                head=((5555, TCP, 0.8),),
                tail_ports=PortProfile.random_tail(tail_rng, 40, TCP),
            ),
            tail_fraction=0.3,
            volume_sigma=0.8,
        ),
        ActorGroup(
            name="background",
            label=None,
            addresses=space.allocate_scattered(200),
            schedule=ChurnSchedule(rate_per_day=2.0, mean_lifetime_days=5.0),
            profile=PortProfile(
                head=((445, TCP, 0.4),),
                tail_ports=PortProfile.random_tail(tail_rng, 100, TCP),
            ),
            tail_fraction=0.1,
            volume_sigma=0.8,
        ),
    ]
    return Scenario(
        actors=actors,
        n_backscatter=500,
        t_start=TRACE_START,
        days=days,
        seed=seed,
    )


def quiet_scenario(days: float = 5.0, seed: int = 7) -> Scenario:
    """No coordinated groups at all — a false-positive stress test.

    Any "coordinated group" the pipeline reports on this scenario is a
    spurious discovery; useful for calibrating silhouette thresholds.
    """
    space = AddressSpace(make_rng(seed + 1))
    tail_rng = make_rng(seed + 2)
    actors = [
        ActorGroup(
            name="lone_scanners",
            label=None,
            addresses=space.allocate_scattered(500),
            schedule=ChurnSchedule(rate_per_day=3.0, mean_lifetime_days=4.0),
            profile=PortProfile(
                head=((445, TCP, 0.2), (23, TCP, 0.15), (22, TCP, 0.1)),
                tail_ports=PortProfile.random_tail(tail_rng, 400, TCP),
            ),
            tail_fraction=0.03,
            head_jitter=0.8,
            volume_sigma=1.0,
        ),
    ]
    return Scenario(
        actors=actors,
        n_backscatter=2_000,
        t_start=TRACE_START,
        days=days,
        seed=seed,
    )


PRESETS = {
    "default": None,  # handled by default_scenario
    "minimal": minimal_scenario,
    "worm": worm_outbreak_scenario,
    "quiet": quiet_scenario,
}
