"""Packet trace container.

A :class:`Trace` is a column-oriented, numpy-backed batch of darknet
packets, sorted by timestamp.  Senders are interned: the per-packet
``senders`` column holds indices into ``sender_ips``, so per-sender
aggregations are plain ``bincount`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

TCP = 6
UDP = 17
ICMP = 1

_PROTO_NAMES = {TCP: "tcp", UDP: "udp", ICMP: "icmp"}

SECONDS_PER_DAY = 86_400


def proto_name(proto: int) -> str:
    """Human-readable protocol name (``tcp``/``udp``/``icmp``)."""
    try:
        return _PROTO_NAMES[int(proto)]
    except KeyError:
        raise ValueError(f"unknown protocol number {proto}") from None


@dataclass
class Trace:
    """A timestamp-sorted packet trace.

    Attributes:
        times: float64 seconds since the epoch, non-decreasing.
        senders: int32 index of the sending IP into ``sender_ips``.
        ports: int32 destination port (0 for ICMP).
        protos: uint8 IP protocol number (6, 17 or 1).
        receivers: uint8 last octet of the targeted darknet /24 address.
        mirai: bool, True when the packet carries the Mirai fingerprint
            (TCP sequence number equal to the destination address).
        sender_ips: uint32 array mapping sender index -> IPv4 address.
    """

    times: np.ndarray
    senders: np.ndarray
    ports: np.ndarray
    protos: np.ndarray
    receivers: np.ndarray
    mirai: np.ndarray
    sender_ips: np.ndarray
    _packet_counts: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = len(self.times)
        for name in ("senders", "ports", "protos", "receivers", "mirai"):
            column = getattr(self, name)
            if len(column) != n:
                raise ValueError(f"column {name} has length {len(column)}, expected {n}")
        if n and np.any(np.diff(self.times) < 0):
            raise ValueError("trace timestamps must be non-decreasing")
        if n and (self.senders.min() < 0 or self.senders.max() >= len(self.sender_ips)):
            raise ValueError("sender index out of range of sender_ips")

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    @property
    def n_packets(self) -> int:
        """Number of packets in the trace."""
        return len(self.times)

    @property
    def n_senders(self) -> int:
        """Number of interned sender addresses (not all need packets)."""
        return len(self.sender_ips)

    @property
    def start_time(self) -> float:
        """Timestamp of the first packet."""
        if not len(self):
            raise ValueError("empty trace has no start time")
        return float(self.times[0])

    @property
    def end_time(self) -> float:
        """Timestamp of the last packet."""
        if not len(self):
            raise ValueError("empty trace has no end time")
        return float(self.times[-1])

    @property
    def duration_days(self) -> float:
        """Span of the trace in days."""
        if not len(self):
            return 0.0
        return (self.end_time - self.start_time) / SECONDS_PER_DAY

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------

    def packet_counts(self) -> np.ndarray:
        """Packets sent by each interned sender (len == n_senders)."""
        if self._packet_counts is None:
            self._packet_counts = np.bincount(
                self.senders, minlength=self.n_senders
            )
        return self._packet_counts

    def active_senders(self, min_packets: int = 10) -> np.ndarray:
        """Indices of senders with at least ``min_packets`` packets.

        This is the paper's activity filter (Section 3.1): only senders
        with >= 10 packets in the observation period are analysed.
        """
        if min_packets < 1:
            raise ValueError("min_packets must be positive")
        return np.flatnonzero(self.packet_counts() >= min_packets)

    def observed_senders(self) -> np.ndarray:
        """Indices of senders with at least one packet."""
        return np.flatnonzero(self.packet_counts() > 0)

    def distinct_ports(self) -> int:
        """Number of distinct (port, protocol) pairs targeted."""
        if not len(self):
            return 0
        keys = self.ports.astype(np.int64) * 256 + self.protos
        return int(np.unique(keys).size)

    def port_packet_counts(self) -> dict[tuple[int, int], int]:
        """Packets per (port, protocol) pair, as a dict."""
        if not len(self):
            return {}
        keys = self.ports.astype(np.int64) * 256 + self.protos
        uniq, counts = np.unique(keys, return_counts=True)
        return {
            (int(key // 256), int(key % 256)): int(count)
            for key, count in zip(uniq, counts)
        }

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "Trace":
        """New trace containing only packets where ``mask`` is True.

        The sender table is shared (indices stay valid), which keeps
        labels and per-sender arrays comparable across selections.
        """
        mask = np.asarray(mask)
        if mask.dtype != bool or len(mask) != len(self):
            raise ValueError("mask must be a boolean array aligned with the trace")
        return Trace(
            times=self.times[mask],
            senders=self.senders[mask],
            ports=self.ports[mask],
            protos=self.protos[mask],
            receivers=self.receivers[mask],
            mirai=self.mirai[mask],
            sender_ips=self.sender_ips,
        )

    def between(self, t_start: float, t_end: float) -> "Trace":
        """Packets with timestamp in ``[t_start, t_end)``."""
        lo = int(np.searchsorted(self.times, t_start, side="left"))
        hi = int(np.searchsorted(self.times, t_end, side="left"))
        mask = np.zeros(len(self), dtype=bool)
        mask[lo:hi] = True
        return self.select(mask)

    def last_days(self, days: float) -> "Trace":
        """Packets in the final ``days`` days of the trace."""
        if not len(self):
            return self
        return self.between(self.end_time - days * SECONDS_PER_DAY, np.inf)

    def first_days(self, days: float) -> "Trace":
        """Packets in the initial ``days`` days of the trace."""
        if not len(self):
            return self
        return self.between(-np.inf, self.start_time + days * SECONDS_PER_DAY)

    def from_senders(self, sender_indices: np.ndarray) -> "Trace":
        """Packets emitted by any of ``sender_indices``."""
        keep = np.zeros(self.n_senders, dtype=bool)
        keep[np.asarray(sender_indices, dtype=np.int64)] = True
        return self.select(keep[self.senders])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_events(
        times: np.ndarray,
        sender_ips_per_packet: np.ndarray,
        ports: np.ndarray,
        protos: np.ndarray,
        receivers: np.ndarray,
        mirai: np.ndarray,
        extra_sender_ips: np.ndarray | None = None,
    ) -> "Trace":
        """Build a sorted trace from unsorted event columns.

        ``sender_ips_per_packet`` holds raw uint32 addresses; they are
        interned into the trace sender table.  ``extra_sender_ips`` adds
        addresses with no packets (used by tests to model senders whose
        traffic was fully filtered).
        """
        order = np.argsort(times, kind="stable")
        raw_ips = np.asarray(sender_ips_per_packet, dtype=np.uint64)
        if extra_sender_ips is not None:
            pool = np.concatenate([raw_ips, np.asarray(extra_sender_ips, np.uint64)])
        else:
            pool = raw_ips
        table, inverse = np.unique(pool, return_inverse=True)
        senders = inverse[: len(raw_ips)].astype(np.int32)[order]
        return Trace(
            times=np.asarray(times, dtype=np.float64)[order],
            senders=senders,
            ports=np.asarray(ports, dtype=np.int32)[order],
            protos=np.asarray(protos, dtype=np.uint8)[order],
            receivers=np.asarray(receivers, dtype=np.uint8)[order],
            mirai=np.asarray(mirai, dtype=bool)[order],
            sender_ips=table.astype(np.uint32),
        )

    @staticmethod
    def empty() -> "Trace":
        """An empty trace with no packets and no senders."""
        return Trace(
            times=np.empty(0, dtype=np.float64),
            senders=np.empty(0, dtype=np.int32),
            ports=np.empty(0, dtype=np.int32),
            protos=np.empty(0, dtype=np.uint8),
            receivers=np.empty(0, dtype=np.uint8),
            mirai=np.empty(0, dtype=bool),
            sender_ips=np.empty(0, dtype=np.uint32),
        )
