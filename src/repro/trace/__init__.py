"""Darknet traffic simulator.

The paper analyses a 30-day trace from a /24 darknet.  That trace is not
redistributable at full fidelity, so this package synthesises a trace
with the same population structure: the nine labelled ground-truth
groups of Table 2, the unlabeled coordinated groups of Table 5,
unstructured active senders and one-shot backscatter noise.

The entry point is :func:`repro.trace.scenario.default_scenario`
followed by :func:`repro.trace.generator.generate_trace`.
"""

from repro.trace.actors import ActorGroup, PortProfile
from repro.trace.flows import FlowTable, aggregate_flows
from repro.trace.generator import generate_trace
from repro.trace.merge import merge_traces
from repro.trace.packet import ICMP, TCP, UDP, Trace, proto_name
from repro.trace.presets import minimal_scenario, quiet_scenario, worm_outbreak_scenario
from repro.trace.scenario import Scenario, default_scenario
from repro.trace.validation import ValidationReport, validate_trace
from repro.trace.schedule import (
    BurstSchedule,
    ChurnSchedule,
    CompositeSchedule,
    ContinuousSchedule,
    PeriodicSchedule,
    RampSchedule,
    Schedule,
    SparseSchedule,
    StaggeredSchedule,
)

__all__ = [
    "ActorGroup",
    "BurstSchedule",
    "FlowTable",
    "ValidationReport",
    "aggregate_flows",
    "minimal_scenario",
    "quiet_scenario",
    "validate_trace",
    "worm_outbreak_scenario",
    "ChurnSchedule",
    "CompositeSchedule",
    "ContinuousSchedule",
    "ICMP",
    "PeriodicSchedule",
    "PortProfile",
    "RampSchedule",
    "Scenario",
    "Schedule",
    "SparseSchedule",
    "StaggeredSchedule",
    "TCP",
    "Trace",
    "UDP",
    "default_scenario",
    "generate_trace",
    "merge_traces",
    "proto_name",
]
