"""Render a :class:`Scenario` into a packet trace with ground truth."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.labels.groundtruth import GroundTruth
from repro.trace.address import AddressSpace
from repro.trace.backscatter import render_backscatter
from repro.trace.packet import Trace
from repro.trace.scenario import Scenario
from repro.utils.rng import child_rng, make_rng


@dataclass
class TraceBundle:
    """A generated trace plus everything the simulator knows about it.

    Attributes:
        trace: the full packet trace.
        truth: IP -> ground-truth-class mapping (labelled actors only).
        actor_ips: actor name -> its sender addresses.
        actor_subgroups: actor name -> per-sender sub-cluster ids
            (e.g. the Censys shifts), aligned with ``actor_ips``.
    """

    trace: Trace
    truth: GroundTruth
    actor_ips: dict[str, np.ndarray]
    actor_subgroups: dict[str, np.ndarray]

    def actor_names_for(self, senders: np.ndarray) -> np.ndarray:
        """Actor name per sender index (``"backscatter"`` if none).

        The actor identity is the simulator's hidden "true partition";
        clustering benchmarks compare detected communities against it.
        """
        senders = np.asarray(senders, dtype=np.int64)
        names = np.array(["backscatter"] * len(senders), dtype=object)
        ips = self.trace.sender_ips[senders]
        by_ip: dict[int, str] = {}
        for actor_name, actor_ips in self.actor_ips.items():
            for ip in actor_ips:
                by_ip[int(ip)] = actor_name
        for i, ip in enumerate(ips):
            names[i] = by_ip.get(int(ip), "backscatter")
        return names

    def sender_indices_of(self, actor_name: str) -> np.ndarray:
        """Trace sender indices of an actor's addresses (present ones)."""
        wanted = self.actor_ips[actor_name]
        positions = np.searchsorted(self.trace.sender_ips, wanted)
        positions = np.clip(positions, 0, len(self.trace.sender_ips) - 1)
        found = self.trace.sender_ips[positions] == wanted
        return positions[found].astype(np.int64)


def generate_trace(scenario: Scenario) -> TraceBundle:
    """Simulate ``scenario`` and return the trace with its ground truth.

    Rendering is deterministic in ``scenario.seed``: actors draw from
    independent child streams keyed by their names, so adding or
    removing one actor does not perturb the others.
    """
    rng = make_rng(scenario.seed)
    columns = {
        "times": [],
        "ips": [],
        "ports": [],
        "protos": [],
        "mirai": [],
    }
    truth = GroundTruth()
    actor_ips: dict[str, np.ndarray] = {}
    actor_subgroups: dict[str, np.ndarray] = {}

    with obs.span("trace.generate", actors=len(scenario.actors)) as sp:
        for actor in scenario.actors:
            events = actor.render(rng, scenario.t_start, scenario.t_end)
            for key in columns:
                columns[key].append(events[key])
            actor_ips[actor.name] = actor.addresses
            actor_subgroups[actor.name] = actor.sender_subgroups()
            if actor.label is not None:
                truth.add_class(actor.label, actor.addresses)

        if scenario.n_backscatter:
            # Backscatter addresses come from a dedicated allocator so
            # their count does not shift actor address pools across
            # configurations.
            noise_space = AddressSpace(child_rng(rng, "backscatter-space"))
            events = render_backscatter(
                child_rng(rng, "backscatter"),
                noise_space,
                scenario.n_backscatter,
                scenario.t_start,
                scenario.t_end,
            )
            for key in columns:
                columns[key].append(events[key])

        times = np.concatenate(columns["times"])
        ips = np.concatenate(columns["ips"])
        n = len(times)
        receiver_rng = child_rng(rng, "receivers")
        trace = Trace.from_events(
            times=times,
            sender_ips_per_packet=ips,
            ports=np.concatenate(columns["ports"]),
            protos=np.concatenate(columns["protos"]),
            receivers=receiver_rng.integers(0, 256, size=n).astype(np.uint8),
            mirai=np.concatenate(columns["mirai"]),
        )
        obs.add("trace.packets", n)
        sp.set(items=n, items_unit="packets")
    return TraceBundle(
        trace=trace,
        truth=truth,
        actor_ips=actor_ips,
        actor_subgroups=actor_subgroups,
    )
