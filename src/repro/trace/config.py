"""Declarative scenario configuration.

Lets users define custom darknet scenarios as JSON/dict documents
instead of Python code — the natural interface for the CLI and for
experiment sweeps.  Example::

    {
      "days": 10,
      "seed": 3,
      "backscatter": 2000,
      "actors": [
        {
          "name": "botnet",
          "label": "Mirai-like",
          "senders": {"kind": "scattered", "count": 300},
          "schedule": {"kind": "churn", "rate_per_day": 6, "mean_lifetime_days": 5},
          "ports": {"head": [["23/tcp", 0.9]], "tail": {"count": 60}},
          "mirai_probability": 1.0
        }
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.services.ports import parse_port
from repro.trace.actors import ActorGroup, PortProfile
from repro.trace.address import AddressSpace
from repro.trace.packet import TCP
from repro.trace.scenario import TRACE_START, Scenario
from repro.trace.schedule import (
    BurstSchedule,
    ChurnSchedule,
    ContinuousSchedule,
    DesyncPeriodicSchedule,
    GatedSchedule,
    PeriodicSchedule,
    RampSchedule,
    Schedule,
    SparseSchedule,
    StaggeredSchedule,
)
from repro.utils.rng import make_rng


class ScenarioConfigError(ValueError):
    """Raised for malformed scenario documents, with a field path."""


_SCHEDULE_KINDS: dict[str, type] = {
    "continuous": ContinuousSchedule,
    "churn": ChurnSchedule,
    "periodic": PeriodicSchedule,
    "desync_periodic": DesyncPeriodicSchedule,
    "burst": BurstSchedule,
    "sparse": SparseSchedule,
    "staggered": StaggeredSchedule,
    "ramp": RampSchedule,
}


def _build_schedule(spec: dict[str, Any], path: str) -> Schedule:
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ScenarioConfigError(f"{path}: schedule needs a 'kind'")
    kind = spec["kind"]
    params = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "gated":
        base_spec = params.pop("base", None)
        if base_spec is None:
            raise ScenarioConfigError(f"{path}: gated schedule needs 'base'")
        base = _build_schedule(base_spec, f"{path}.base")
        try:
            return GatedSchedule(base, **params)
        except (TypeError, ValueError) as exc:
            raise ScenarioConfigError(f"{path}: {exc}") from None
    schedule_cls = _SCHEDULE_KINDS.get(kind)
    if schedule_cls is None:
        raise ScenarioConfigError(
            f"{path}: unknown schedule kind {kind!r} "
            f"(choose from {sorted(_SCHEDULE_KINDS)} or 'gated')"
        )
    try:
        return schedule_cls(**params)
    except (TypeError, ValueError) as exc:
        raise ScenarioConfigError(f"{path}: {exc}") from None


def _build_profile(
    spec: dict[str, Any], tail_rng, path: str
) -> PortProfile:
    if not isinstance(spec, dict):
        raise ScenarioConfigError(f"{path}: ports must be an object")
    head_entries = []
    for i, entry in enumerate(spec.get("head", [])):
        try:
            port_text, weight = entry
            port, proto = parse_port(str(port_text))
            head_entries.append((port, proto, float(weight)))
        except (TypeError, ValueError) as exc:
            raise ScenarioConfigError(f"{path}.head[{i}]: {exc}") from None
    tail_spec = spec.get("tail")
    tail: tuple = ()
    if tail_spec is not None:
        if isinstance(tail_spec, dict):
            count = int(tail_spec.get("count", 0))
            if count < 1:
                raise ScenarioConfigError(f"{path}.tail: count must be >= 1")
            tail = PortProfile.random_tail(tail_rng, count, TCP)
        elif isinstance(tail_spec, list):
            tail = tuple(parse_port(str(p)) for p in tail_spec)
        else:
            raise ScenarioConfigError(
                f"{path}.tail: expected a list of ports or {{'count': n}}"
            )
    try:
        return PortProfile(head=tuple(head_entries), tail_ports=tail)
    except ValueError as exc:
        raise ScenarioConfigError(f"{path}: {exc}") from None


def _build_addresses(spec: dict[str, Any], space: AddressSpace, path: str):
    if not isinstance(spec, dict) or "count" not in spec:
        raise ScenarioConfigError(f"{path}: senders needs a 'count'")
    count = int(spec["count"])
    kind = spec.get("kind", "scattered")
    try:
        if kind == "scattered":
            return space.allocate_scattered(count)
        if kind == "subnet24":
            return space.allocate_subnet24(count)
        if kind == "subnet16":
            return space.allocate_subnet16(count)
        if kind == "multi_subnet24":
            return space.allocate_multi_subnet24(
                count, int(spec.get("subnets", 2))
            )
    except ValueError as exc:
        raise ScenarioConfigError(f"{path}: {exc}") from None
    raise ScenarioConfigError(f"{path}: unknown sender pool kind {kind!r}")


def scenario_from_dict(document: dict[str, Any]) -> Scenario:
    """Build a :class:`Scenario` from a configuration dictionary."""
    if not isinstance(document, dict):
        raise ScenarioConfigError("scenario document must be an object")
    seed = int(document.get("seed", 7))
    days = float(document.get("days", 10.0))
    space = AddressSpace(make_rng(seed + 1))
    tail_rng = make_rng(seed + 2)

    actor_specs = document.get("actors")
    if not actor_specs:
        raise ScenarioConfigError("scenario needs at least one actor")
    actors = []
    for i, spec in enumerate(actor_specs):
        path = f"actors[{i}]"
        if "name" not in spec:
            raise ScenarioConfigError(f"{path}: actor needs a 'name'")
        try:
            actors.append(
                ActorGroup(
                    name=str(spec["name"]),
                    label=spec.get("label"),
                    addresses=_build_addresses(
                        spec.get("senders", {}), space, f"{path}.senders"
                    ),
                    schedule=_build_schedule(
                        spec.get("schedule", {}), f"{path}.schedule"
                    ),
                    profile=_build_profile(
                        spec.get("ports", {}), tail_rng, f"{path}.ports"
                    ),
                    mirai_probability=float(spec.get("mirai_probability", 0.0)),
                    tail_fraction=float(spec.get("tail_fraction", 1.0)),
                    head_jitter=float(spec.get("head_jitter", 0.0)),
                    volume_sigma=float(spec.get("volume_sigma", 0.0)),
                )
            )
        except ValueError as exc:
            if isinstance(exc, ScenarioConfigError):
                raise
            raise ScenarioConfigError(f"{path}: {exc}") from None
    return Scenario(
        actors=actors,
        n_backscatter=int(document.get("backscatter", 0)),
        t_start=float(document.get("t_start", TRACE_START)),
        days=days,
        seed=seed,
    )


def scenario_from_json(path: str | Path) -> Scenario:
    """Load a scenario document from a JSON file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioConfigError(f"{path}: invalid JSON ({exc})") from None
    return scenario_from_dict(document)
