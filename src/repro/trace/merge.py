"""Merging traces with distinct sender tables (incremental ingest).

Traces intern sender IPs into a per-trace table; appending a new day of
traffic therefore needs a merged table plus remap arrays translating
each input trace's sender indices into the merged numbering.  The remap
of the first trace also translates prior artifacts — embedding tokens
and corpus sentences — so incremental updates never re-read old days.
"""

from __future__ import annotations

import numpy as np

from repro.trace.packet import Trace


def merge_traces(a: Trace, b: Trace) -> tuple[Trace, np.ndarray, np.ndarray]:
    """Concatenate two traces into one time-sorted trace.

    Returns ``(merged, remap_a, remap_b)`` where ``remap_x[i]`` is the
    merged sender index of sender ``i`` of trace ``x``.  The merged
    sender table is the sorted union of both tables, so both remaps are
    strictly increasing — sorted token arrays stay sorted after
    remapping.
    """
    table = np.union1d(
        a.sender_ips.astype(np.uint64), b.sender_ips.astype(np.uint64)
    )
    remap_a = np.searchsorted(table, a.sender_ips.astype(np.uint64))
    remap_b = np.searchsorted(table, b.sender_ips.astype(np.uint64))

    times = np.concatenate([a.times, b.times])
    order = np.argsort(times, kind="stable")
    merged = Trace(
        times=times[order],
        senders=np.concatenate(
            [remap_a[a.senders], remap_b[b.senders]]
        ).astype(np.int32)[order],
        ports=np.concatenate([a.ports, b.ports])[order],
        protos=np.concatenate([a.protos, b.protos])[order],
        receivers=np.concatenate([a.receivers, b.receivers])[order],
        mirai=np.concatenate([a.mirai, b.mirai])[order],
        sender_ips=table.astype(a.sender_ips.dtype),
    )
    return merged, remap_a.astype(np.int64), remap_b.astype(np.int64)
