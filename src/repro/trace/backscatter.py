"""Backscatter noise: one-shot senders replying to spoofed attacks.

36% of the senders in the paper's trace are seen exactly once in a
month (Figure 2a) — victims of attacks carried out with spoofed source
addresses.  These senders fall below the activity filter and only
matter for the dataset-statistics experiments (Table 1, Figures 1-2).
"""

from __future__ import annotations

import numpy as np

from repro.trace.address import AddressSpace
from repro.trace.packet import TCP, UDP


def render_backscatter(
    rng: np.random.Generator,
    space: AddressSpace,
    n_senders: int,
    t_start: float,
    t_end: float,
) -> dict[str, np.ndarray]:
    """Generate raw events for ``n_senders`` occasional senders.

    Per-sender packet counts follow a truncated geometric with 36% mass
    on a single packet and support 1..9, matching the sub-threshold
    population of Figure 2a.
    """
    if n_senders == 0:
        return {
            "times": np.empty(0),
            "ips": np.empty(0, dtype=np.uint32),
            "ports": np.empty(0, dtype=np.int32),
            "protos": np.empty(0, dtype=np.uint8),
            "mirai": np.empty(0, dtype=bool),
        }
    ips = space.allocate_scattered(n_senders)
    # Truncated geometric on {1..9}: P(1) ~= 0.36 for p = 0.36.
    counts = np.minimum(rng.geometric(0.36, size=n_senders), 9)
    total = int(counts.sum())
    packet_ips = np.repeat(ips, counts)
    times = t_start + rng.random(total) * (t_end - t_start)
    # Destination ports at the darknet are the spoofed source ports of
    # the original attack: mostly ephemeral, with a visible share of
    # well-known service ports.
    ports = rng.integers(1024, 65_536, size=total).astype(np.int32)
    well_known = rng.random(total) < 0.25
    common = np.array([80, 443, 53, 123, 22, 25], dtype=np.int32)
    ports[well_known] = rng.choice(common, size=int(well_known.sum()))
    protos = np.where(rng.random(total) < 0.8, TCP, UDP).astype(np.uint8)
    return {
        "times": times,
        "ips": packet_ips,
        "ports": ports,
        "protos": protos,
        "mirai": np.zeros(total, dtype=bool),
    }
