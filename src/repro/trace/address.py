"""IPv4 address pools for the simulator.

Scanner groups in the paper are recognisable by their address layout:
Censys scans from a few known subnets, Shadowserver from one /16, the
"unknown1" NetBIOS scanner from a single /24, Mirai-like bots from IoT
devices scattered across the whole address space.  The
:class:`AddressSpace` hands out non-overlapping pools with those shapes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

# First octets we never allocate, to keep generated traffic plausible:
# 0 (this network), 10 (private), 127 (loopback), 224+ (multicast and
# reserved).
_FORBIDDEN_FIRST_OCTETS = frozenset({0, 10, 127}) | set(range(224, 256))


def ip_to_str(ip: int) -> str:
    """Dotted-quad representation of a uint32 address."""
    ip = int(ip)
    if not 0 <= ip < 2**32:
        raise ValueError(f"address {ip} out of IPv4 range")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(text: str) -> int:
    """Parse a dotted quad into a uint32 address."""
    octets = text.split(".")
    if len(octets) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for octet in octets:
        part = int(octet)
        if not 0 <= part <= 255:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | part
    return value


def subnet24(ip: int) -> int:
    """The /24 network base of an address."""
    return int(ip) & 0xFFFFFF00


def subnet16(ip: int) -> int:
    """The /16 network base of an address."""
    return int(ip) & 0xFFFF0000


class AddressSpace:
    """Allocator of disjoint sender-address pools.

    All allocations from one instance are guaranteed disjoint, so every
    simulated sender has a unique address and subnet-level fingerprints
    (e.g. "85 addresses in the same /24") are unambiguous.
    """

    def __init__(self, seed: int | np.random.Generator | None = 0) -> None:
        self._rng = make_rng(seed)
        self._used: set[int] = set()
        self._used_sub16: set[int] = set()

    def _random_first_octet(self) -> int:
        while True:
            octet = int(self._rng.integers(1, 224))
            if octet not in _FORBIDDEN_FIRST_OCTETS:
                return octet

    def _fresh_subnet16(self) -> int:
        while True:
            base = (self._random_first_octet() << 24) | (
                int(self._rng.integers(0, 256)) << 16
            )
            if base not in self._used_sub16:
                self._used_sub16.add(base)
                return base

    def allocate_subnet24(self, n: int) -> np.ndarray:
        """``n`` distinct addresses inside one fresh /24 (n <= 254)."""
        if not 1 <= n <= 254:
            raise ValueError(f"a /24 holds at most 254 hosts, requested {n}")
        base = self._fresh_subnet16() | (int(self._rng.integers(0, 256)) << 8)
        hosts = self._rng.choice(np.arange(1, 255), size=n, replace=False)
        ips = base + np.sort(hosts)
        self._used.update(int(ip) for ip in ips)
        return ips.astype(np.uint32)

    def allocate_subnet16(self, n: int) -> np.ndarray:
        """``n`` distinct addresses inside one fresh /16."""
        if not 1 <= n <= 60_000:
            raise ValueError(f"unreasonable /16 allocation of {n} hosts")
        base = self._fresh_subnet16()
        offsets = self._rng.choice(np.arange(256, 65_280), size=n, replace=False)
        ips = base + np.sort(offsets)
        self._used.update(int(ip) for ip in ips)
        return ips.astype(np.uint32)

    def allocate_multi_subnet24(self, n: int, n_subnets: int) -> np.ndarray:
        """``n`` addresses spread evenly across ``n_subnets`` fresh /24s."""
        if n_subnets < 1:
            raise ValueError("need at least one subnet")
        per_subnet = np.full(n_subnets, n // n_subnets)
        per_subnet[: n % n_subnets] += 1
        chunks = [self.allocate_subnet24(int(count)) for count in per_subnet if count]
        return np.concatenate(chunks).astype(np.uint32)

    def allocate_scattered(self, n: int) -> np.ndarray:
        """``n`` addresses scattered across the whole address space.

        Each address lands in its own random /24 with high probability,
        modelling botnet members on residential/IoT networks.
        """
        if n < 0:
            raise ValueError("cannot allocate a negative number of addresses")
        ips: list[int] = []
        while len(ips) < n:
            batch = n - len(ips)
            firsts = np.array([self._random_first_octet() for _ in range(batch)])
            rest = self._rng.integers(0, 2**24, size=batch)
            candidates = (firsts.astype(np.uint64) << 24) | rest.astype(np.uint64)
            for ip in candidates:
                ip = int(ip)
                host = ip & 0xFF
                if host in (0, 255) or ip in self._used:
                    continue
                if subnet16(ip) in self._used_sub16:
                    continue
                self._used.add(ip)
                ips.append(ip)
                if len(ips) == n:
                    break
        return np.array(sorted(ips), dtype=np.uint32)
