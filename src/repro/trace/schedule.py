"""Activity schedules for simulated sender groups.

A schedule decides *when* each sender of a group emits packets over the
trace horizon.  The paper's ground-truth classes differ precisely in
this temporal behaviour: Mirai bots churn continuously, Censys scans in
staggered shifts (Figure 12), Engin-Umich fires short coordinated bursts
(Figure 9b), Stretchoid is irregular and incoherent (Figure 9a), the ADB
worm ramps up as it spreads (Figure 15).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.trace.packet import SECONDS_PER_DAY


class Schedule(ABC):
    """Generator of per-sender packet timestamps."""

    @abstractmethod
    def sample(
        self,
        rng: np.random.Generator,
        t_start: float,
        t_end: float,
        n_senders: int,
    ) -> list[np.ndarray]:
        """Return one array of event timestamps per sender."""

    def subgroups(self, n_senders: int) -> np.ndarray:
        """Sub-cluster id per sender (all zero unless overridden)."""
        return np.zeros(n_senders, dtype=np.int32)


def _poisson_times(
    rng: np.random.Generator, t_start: float, t_end: float, rate_per_day: float
) -> np.ndarray:
    """Homogeneous Poisson arrivals in ``[t_start, t_end)``."""
    duration_days = max(t_end - t_start, 0.0) / SECONDS_PER_DAY
    expected = rate_per_day * duration_days
    count = int(rng.poisson(expected)) if expected > 0 else 0
    return t_start + rng.random(count) * (t_end - t_start)


class ContinuousSchedule(Schedule):
    """Independent Poisson traffic over the whole horizon."""

    def __init__(self, rate_per_day: float) -> None:
        if rate_per_day <= 0:
            raise ValueError("rate_per_day must be positive")
        self.rate_per_day = rate_per_day

    def sample(self, rng, t_start, t_end, n_senders):
        return [
            _poisson_times(rng, t_start, t_end, self.rate_per_day)
            for _ in range(n_senders)
        ]


class ChurnSchedule(Schedule):
    """Continuous traffic, but each sender is only alive in a random
    sub-interval of the horizon (botnet member churn)."""

    def __init__(self, rate_per_day: float, mean_lifetime_days: float) -> None:
        if rate_per_day <= 0 or mean_lifetime_days <= 0:
            raise ValueError("rate and lifetime must be positive")
        self.rate_per_day = rate_per_day
        self.mean_lifetime_days = mean_lifetime_days

    def sample(self, rng, t_start, t_end, n_senders):
        horizon = t_end - t_start
        events = []
        for _ in range(n_senders):
            lifetime = min(
                rng.exponential(self.mean_lifetime_days) * SECONDS_PER_DAY, horizon
            )
            # A sender must live long enough to pass the activity filter.
            lifetime = max(lifetime, horizon * 0.05)
            birth = t_start + rng.random() * (horizon - lifetime)
            events.append(_poisson_times(rng, birth, birth + lifetime, self.rate_per_day))
        return events


class PeriodicSchedule(Schedule):
    """Coordinated on/off duty cycle shared by the whole group.

    All senders are active during the same recurring windows, producing
    the "very regular daily/hourly pattern" of the unknown7/unknown8
    clusters (Table 5).
    """

    def __init__(
        self,
        period_days: float,
        duty: float,
        rate_per_active_day: float,
        phase: float = 0.0,
    ) -> None:
        if period_days <= 0:
            raise ValueError("period_days must be positive")
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        if rate_per_active_day <= 0:
            raise ValueError("rate_per_active_day must be positive")
        if not 0 <= phase < 1:
            raise ValueError("phase must be in [0, 1)")
        self.period_days = period_days
        self.duty = duty
        self.rate_per_active_day = rate_per_active_day
        self.phase = phase

    def _active_windows(self, t_start: float, t_end: float) -> list[tuple[float, float]]:
        period = self.period_days * SECONDS_PER_DAY
        on_time = period * self.duty
        windows = []
        k = int(np.floor((t_start - self.phase * period) / period)) - 1
        while True:
            window_start = (k + self.phase) * period
            window_end = window_start + on_time
            k += 1
            if window_start >= t_end:
                break
            lo, hi = max(window_start, t_start), min(window_end, t_end)
            if hi > lo:
                windows.append((lo, hi))
        return windows

    def sample(self, rng, t_start, t_end, n_senders):
        windows = self._active_windows(t_start, t_end)
        events = []
        for _ in range(n_senders):
            chunks = [
                _poisson_times(rng, lo, hi, self.rate_per_active_day)
                for lo, hi in windows
            ]
            events.append(np.concatenate(chunks) if chunks else np.empty(0))
        return events


class BurstSchedule(Schedule):
    """Short coordinated bursts shared by the whole group.

    Models impulsive coordinated scans such as Engin-Umich (Figure 9b):
    the group wakes up together a handful of times and every sender
    fires a volley of packets within minutes.  With
    ``include_final_day`` one burst is pinned inside the last day so the
    group is present in the evaluation set, as in the paper's trace.
    """

    def __init__(
        self,
        n_bursts: int,
        burst_duration_s: float,
        packets_per_burst: float,
        include_final_day: bool = False,
    ) -> None:
        if n_bursts < 1:
            raise ValueError("need at least one burst")
        if burst_duration_s <= 0 or packets_per_burst <= 0:
            raise ValueError("burst duration and volume must be positive")
        self.n_bursts = n_bursts
        self.burst_duration_s = burst_duration_s
        self.packets_per_burst = packets_per_burst
        self.include_final_day = include_final_day

    def sample(self, rng, t_start, t_end, n_senders):
        usable = t_end - t_start - self.burst_duration_s
        starts = t_start + rng.random(self.n_bursts) * usable
        if self.include_final_day:
            final_window = max(t_end - SECONDS_PER_DAY, t_start)
            starts[-1] = final_window + rng.random() * (
                t_end - final_window - self.burst_duration_s
            )
        starts = np.sort(starts)
        events: list[np.ndarray] = [np.empty(0)] * n_senders
        for i in range(n_senders):
            chunks = []
            for burst_start in starts:
                count = max(int(rng.poisson(self.packets_per_burst)), 1)
                chunks.append(burst_start + rng.random(count) * self.burst_duration_s)
            events[i] = np.concatenate(chunks)
        return events


class SparseSchedule(Schedule):
    """Mostly uncoordinated, irregular activity (Stretchoid, Figure 9a).

    Each sender independently picks moments over the horizon and sends
    a couple of packets around each.  A fraction of the events can be
    drawn from a small pool of *shared anchors* — the weak group-level
    coherence that lets the paper recover a minority of Stretchoid
    senders (recall 0.35 in Table 4) while most fall in random contexts.
    """

    def __init__(
        self,
        events_per_sender: float,
        packets_per_event: float,
        shared_anchor_prob: float = 0.0,
        n_anchors: int = 0,
        jitter_s: float = 1800.0,
    ) -> None:
        if events_per_sender <= 0 or packets_per_event <= 0:
            raise ValueError("event and packet counts must be positive")
        if not 0.0 <= shared_anchor_prob <= 1.0:
            raise ValueError("shared_anchor_prob must be in [0, 1]")
        if shared_anchor_prob > 0 and n_anchors < 1:
            raise ValueError("shared anchors require n_anchors >= 1")
        self.events_per_sender = events_per_sender
        self.packets_per_event = packets_per_event
        self.shared_anchor_prob = shared_anchor_prob
        self.n_anchors = n_anchors
        self.jitter_s = jitter_s

    def sample(self, rng, t_start, t_end, n_senders):
        shared = (
            t_start + rng.random(self.n_anchors) * (t_end - t_start)
            if self.n_anchors
            else np.empty(0)
        )
        events = []
        for _ in range(n_senders):
            n_events = max(int(rng.poisson(self.events_per_sender)), 1)
            anchors = t_start + rng.random(n_events) * (t_end - t_start)
            if len(shared):
                use_shared = rng.random(n_events) < self.shared_anchor_prob
                picks = rng.integers(0, len(shared), size=n_events)
                jitter = (rng.random(n_events) - 0.5) * 2 * self.jitter_s
                anchors = np.where(use_shared, shared[picks] + jitter, anchors)
            chunks = []
            for anchor in anchors:
                count = max(int(rng.poisson(self.packets_per_event)), 1)
                chunks.append(anchor + rng.random(count) * 600.0)
            events.append(np.clip(np.concatenate(chunks), t_start, t_end - 1e-3))
        return events


class StaggeredSchedule(Schedule):
    """Senders split into shifts, each shift active in its own slice.

    This reproduces the Censys strategy surfaced by the clustering
    (Figure 12): similar-sized sets of scanners take turns over the
    month, each set active in a distinct period.
    """

    def __init__(self, n_subgroups: int, rate_per_active_day: float) -> None:
        if n_subgroups < 1:
            raise ValueError("need at least one subgroup")
        if rate_per_active_day <= 0:
            raise ValueError("rate_per_active_day must be positive")
        self.n_subgroups = n_subgroups
        self.rate_per_active_day = rate_per_active_day

    def subgroups(self, n_senders: int) -> np.ndarray:
        return (np.arange(n_senders) * self.n_subgroups // max(n_senders, 1)).astype(
            np.int32
        )

    def sample(self, rng, t_start, t_end, n_senders):
        assignment = self.subgroups(n_senders)
        slice_len = (t_end - t_start) / self.n_subgroups
        events = []
        for i in range(n_senders):
            g = assignment[i]
            lo = t_start + g * slice_len
            hi = lo + slice_len
            events.append(_poisson_times(rng, lo, hi, self.rate_per_active_day))
        return events


class DesyncPeriodicSchedule(Schedule):
    """A periodic duty cycle with a *different random phase per sender*.

    The anti-particle of :class:`PeriodicSchedule`: every sender has
    the same rate, period and duty — identical volume and rhythm — but
    the group never acts together.  Used for the unknown "mimic"
    populations that are indistinguishable from a ground-truth class by
    any per-sender statistic yet lack its coordination.
    """

    def __init__(
        self, period_days: float, duty: float, rate_per_active_day: float
    ) -> None:
        if period_days <= 0:
            raise ValueError("period_days must be positive")
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        if rate_per_active_day <= 0:
            raise ValueError("rate_per_active_day must be positive")
        self.period_days = period_days
        self.duty = duty
        self.rate_per_active_day = rate_per_active_day

    def sample(self, rng, t_start, t_end, n_senders):
        events = []
        for _ in range(n_senders):
            phase = float(rng.random())
            sender_schedule = PeriodicSchedule(
                self.period_days, self.duty, self.rate_per_active_day, phase
            )
            events.extend(sender_schedule.sample(rng, t_start, t_end, 1))
        return events


class GatedSchedule(Schedule):
    """A base schedule thinned by a group-level duty cycle.

    Events of ``base`` survive only when they fall inside recurring
    group-wide activity windows.  This models fleets whose members
    churn individually but act in synchronized waves (botnet scan
    campaigns commanded by a controller): the per-sender behaviour
    stays irregular while the group gains the temporal coordination
    that the embedding exploits.
    """

    def __init__(
        self,
        base: Schedule,
        period_days: float,
        duty: float,
        phase: float = 0.0,
    ) -> None:
        if period_days <= 0:
            raise ValueError("period_days must be positive")
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        if not 0 <= phase < 1:
            raise ValueError("phase must be in [0, 1)")
        self.base = base
        self.period_days = period_days
        self.duty = duty
        self.phase = phase

    def subgroups(self, n_senders: int) -> np.ndarray:
        return self.base.subgroups(n_senders)

    def sample(self, rng, t_start, t_end, n_senders):
        period = self.period_days * SECONDS_PER_DAY
        events = self.base.sample(rng, t_start, t_end, n_senders)
        # The base rate is boosted so the *effective* rate after gating
        # matches the base schedule's nominal rate.
        gated = []
        for times in events:
            cycle_pos = ((times / period) - self.phase) % 1.0
            gated.append(times[cycle_pos < self.duty])
        return gated


class CompositeSchedule(Schedule):
    """Superposition of two schedules for the same group.

    Used for Censys: a low-rate continuous baseline keeps every sender
    visible through the month, while a staggered high-rate component
    produces the shift pattern of Figure 12.  Subgroup assignment comes
    from the first component that defines one.
    """

    def __init__(self, *components: Schedule) -> None:
        if len(components) < 2:
            raise ValueError("a composite needs at least two components")
        self.components = components

    def subgroups(self, n_senders: int) -> np.ndarray:
        for component in self.components:
            assignment = component.subgroups(n_senders)
            if assignment.any():
                return assignment
        return np.zeros(n_senders, dtype=np.int32)

    def sample(self, rng, t_start, t_end, n_senders):
        per_component = [
            component.sample(rng, t_start, t_end, n_senders)
            for component in self.components
        ]
        return [
            np.concatenate([events[i] for events in per_component])
            for i in range(n_senders)
        ]


class RampSchedule(Schedule):
    """Worm-style spread: senders join over time, traffic ramps up.

    Sender ``i`` becomes active at a join time drawn from an
    exponentially accelerating infection curve and stays active until
    the end of the horizon (ADB worm, Figure 15).
    """

    def __init__(self, rate_per_day: float, growth: float = 3.0) -> None:
        if rate_per_day <= 0:
            raise ValueError("rate_per_day must be positive")
        if growth <= 0:
            raise ValueError("growth must be positive")
        self.rate_per_day = rate_per_day
        self.growth = growth

    def sample(self, rng, t_start, t_end, n_senders):
        horizon = t_end - t_start
        # Inverse-CDF sampling of join times from an exponential-growth
        # infection curve: most senders join late.
        u = rng.random(n_senders)
        joins = t_start + horizon * np.log1p(u * (np.exp(self.growth) - 1)) / self.growth
        events = []
        for join in joins:
            events.append(_poisson_times(rng, float(join), t_end, self.rate_per_day))
        return events
