"""Flow aggregation.

IP2VEC (Appendix A.2.2) operates on *flows*, not packets.  A darknet
sees no bidirectional traffic, so a flow here is the classic unidirec-
tional aggregate: consecutive packets sharing (sender, receiver,
destination port, protocol) with inter-packet gaps below a timeout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.packet import Trace


@dataclass
class FlowTable:
    """Column-oriented flow records, sorted by flow start time.

    Attributes:
        starts / ends: first and last packet timestamps of each flow.
        senders: sender index (into the originating trace's table).
        receivers: darknet host octet.
        ports / protos: destination port and protocol.
        packets: packets aggregated into each flow.
    """

    starts: np.ndarray
    ends: np.ndarray
    senders: np.ndarray
    receivers: np.ndarray
    ports: np.ndarray
    protos: np.ndarray
    packets: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.starts)
        for name in ("ends", "senders", "receivers", "ports", "protos", "packets"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} misaligned")
        if n and np.any(self.ends < self.starts):
            raise ValueError("flow end before start")

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def n_packets(self) -> int:
        return int(self.packets.sum())

    def durations(self) -> np.ndarray:
        """Flow durations in seconds."""
        return self.ends - self.starts


def aggregate_flows(trace: Trace, timeout: float = 600.0) -> FlowTable:
    """Aggregate a packet trace into unidirectional flows.

    Packets with the same (sender, receiver, port, proto) key belong to
    one flow while their inter-arrival gap stays below ``timeout``; a
    larger gap starts a new flow.
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    if not len(trace):
        empty_int = np.empty(0, dtype=np.int64)
        return FlowTable(
            starts=np.empty(0),
            ends=np.empty(0),
            senders=empty_int,
            receivers=empty_int,
            ports=empty_int,
            protos=empty_int,
            packets=empty_int,
        )

    keys = (
        trace.senders.astype(np.int64) * 2**32
        + trace.receivers.astype(np.int64) * 2**24
        + trace.ports.astype(np.int64) * 2**8
        + trace.protos.astype(np.int64)
    )
    order = np.argsort(keys, kind="stable")  # time order preserved per key
    keys_sorted = keys[order]
    times_sorted = trace.times[order]

    new_key = np.concatenate([[True], np.diff(keys_sorted) != 0])
    big_gap = np.concatenate([[True], np.diff(times_sorted) > timeout])
    flow_start = new_key | big_gap
    flow_ids = np.cumsum(flow_start) - 1
    n_flows = int(flow_ids[-1]) + 1

    starts = np.full(n_flows, np.inf)
    ends = np.full(n_flows, -np.inf)
    np.minimum.at(starts, flow_ids, times_sorted)
    np.maximum.at(ends, flow_ids, times_sorted)
    packets = np.bincount(flow_ids, minlength=n_flows)

    first_packet = np.flatnonzero(flow_start)
    first_original = order[first_packet]
    table = FlowTable(
        starts=starts,
        ends=ends,
        senders=trace.senders[first_original].astype(np.int64),
        receivers=trace.receivers[first_original].astype(np.int64),
        ports=trace.ports[first_original].astype(np.int64),
        protos=trace.protos[first_original].astype(np.int64),
        packets=packets.astype(np.int64),
    )
    time_order = np.argsort(table.starts, kind="stable")
    return FlowTable(
        starts=table.starts[time_order],
        ends=table.ends[time_order],
        senders=table.senders[time_order],
        receivers=table.receivers[time_order],
        ports=table.ports[time_order],
        protos=table.protos[time_order],
        packets=table.packets[time_order],
    )
