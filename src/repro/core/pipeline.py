"""The DarkVec end-to-end pipeline.

Usage sketch::

    config = DarkVecConfig(service="domain")
    darkvec = DarkVec(config)
    darkvec.fit(trace)                      # corpus + embedding
    report = darkvec.evaluate(truth)        # Table 4-style LOO report
    clusters = darkvec.cluster(k_prime=3)   # Louvain communities
    darkvec.update(next_day)                # warm incremental retrain

``fit`` is a thin wrapper over the staged pipeline
(:class:`~repro.core.stages.StagedPipeline`): with no ``cache_dir``
configured it runs fully in memory and is bit-identical to the
historical monolithic path at ``workers=1``; with a cache directory,
every stage is served from the content-addressed artifact store when
its fingerprint matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

import numpy as np

from repro import obs
from repro.ann import audit as ann_audit
from repro.ann.base import NeighborIndex, build_index
from repro.core.config import DarkVecConfig
from repro.core.stages import STAGE_VERSIONS, StagedPipeline, StageStatus
from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus, Sentence
from repro.corpus.windows import WindowGrid
from repro.graph.knn_graph import KnnGraph, build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.io.artifacts import (
    HNSW_INDEX_CODEC,
    HNSW_INDEX_RAW_CODEC,
    IVF_INDEX_CODEC,
    IVF_INDEX_RAW_CODEC,
    IVFPQ_INDEX_CODEC,
    IVFPQ_INDEX_RAW_CODEC,
    KNN_GRAPH_CODEC,
)
from repro.knn.loo import leave_one_out_predictions
from repro.parallel.pool import pool_backend
from repro.knn.report import ClassificationReport, classification_report
from repro.labels.groundtruth import GroundTruth
from repro.obs.health import HealthReport, MonitorResult, classify
from repro.obs.progress import ProgressEvent
from repro.obs.registry import RunRegistry, record_run
from repro.store.cache import ArtifactStore
from repro.store.fingerprint import stage_fingerprint
from repro.trace.merge import merge_traces
from repro.trace.packet import Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.mathutils import unit_rows
from repro.w2v.model import Word2Vec
from repro.w2v.vocab import Vocabulary


class NotFittedError(RuntimeError):
    """Raised when an analysis method runs before :meth:`DarkVec.fit`.

    Subclasses ``RuntimeError`` so pre-existing ``except RuntimeError``
    handlers keep working.
    """


@dataclass
class ClusterResult:
    """Output of the unsupervised stage.

    Attributes:
        communities: community id per embedded sender, aligned with
            ``embedding.tokens``.
        modularity: modularity of the partition on the symmetrised
            k'-NN graph.
        graph: the directed k'-NN graph itself.
    """

    communities: np.ndarray
    modularity: float
    graph: KnnGraph

    @property
    def n_clusters(self) -> int:
        """Number of distinct communities."""
        return len(np.unique(self.communities)) if len(self.communities) else 0


@dataclass
class UpdateReport:
    """What one incremental :meth:`DarkVec.update` call did.

    Attributes:
        seconds: wall time of the whole update.
        new_packets: packets in the appended trace.
        evicted_packets: packets dropped by the rolling-window eviction.
        sentences_retained: corpus sentences reused untouched.
        sentences_rebuilt: sentences rebuilt from the affected dT windows.
        sentences_evicted: sentences dropped with their windows.
        warm_tokens: vocabulary tokens seeded from the prior embedding.
        new_tokens: vocabulary tokens initialised fresh (unseen senders).
    """

    seconds: float
    new_packets: int
    evicted_packets: int
    sentences_retained: int
    sentences_rebuilt: int
    sentences_evicted: int
    warm_tokens: int
    new_tokens: int


class DarkVec:
    """DarkVec pipeline: trace -> corpus -> embedding -> analyses."""

    def __init__(
        self,
        config: DarkVecConfig | None = None,
        store: ArtifactStore | None = None,
    ) -> None:
        self.config = config or DarkVecConfig()
        if store is None and self.config.cache_dir is not None:
            store = ArtifactStore(self.config.cache_dir)
        self.store = store
        self.registry: RunRegistry | None = (
            RunRegistry(store.root / "registry") if store is not None else None
        )
        self.trace: Trace | None = None
        self.corpus: Corpus | None = None
        self.embedding: KeyedVectors | None = None
        self.stage_statuses: list[StageStatus] = []
        self.last_update: UpdateReport | None = None
        self.last_health: HealthReport | None = None
        self._raw_corpus: Corpus | None = None
        self._active: np.ndarray | None = None
        self._t_origin: float = 0.0
        self._service_map = None
        self._embedding_hash: str | None = None
        self._index: NeighborIndex | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        trace: Trace,
        progress: Callable[[ProgressEvent], None] | None = None,
    ) -> "DarkVec":
        """Build the corpus of ``trace`` and train the embedding.

        Runs the staged pipeline (ingest -> service-map -> corpus ->
        vocab -> train).  With :attr:`store` configured, stages whose
        fingerprints match cached artifacts are loaded instead of
        recomputed; without it, the run is in-memory and bit-identical
        to the historical monolithic path at ``workers=1``.

        Args:
            trace: packet trace to embed.
            progress: optional per-epoch callback forwarded to
                :class:`~repro.w2v.model.Word2Vec` (receives a
                :class:`~repro.obs.progress.ProgressEvent`).
        """
        t0 = perf_counter()
        with obs.span("pipeline.fit"), pool_backend(self.config.pool_backend):
            pipeline = StagedPipeline(
                self.config, store=self.store, progress=progress
            )
            artifacts = pipeline.run(trace, until="train")
            self._adopt(artifacts)
            obs.sample_rss_peak_children("proc.rss_peak_children")
            if self.registry is not None:
                profile, monitors = self._monitor_ingest(trace, kind="fit")
                self.last_health = HealthReport(monitors=monitors)
                record_run(
                    self.registry,
                    "fit",
                    self.config,
                    wall_seconds=perf_counter() - t0,
                    stages=self.stage_statuses,
                    profile=profile,
                    health=self.last_health.to_dict(),
                )
        return self

    def _adopt(self, artifacts) -> None:
        """Install the staged-pipeline outputs as the fitted state."""
        from repro.io.artifacts import KEYEDVECTORS_CODEC

        self.trace = artifacts.trace
        self._raw_corpus = artifacts.corpus
        self._active = artifacts.active
        self.corpus = artifacts.corpus.filtered_to(artifacts.active)
        self.embedding = artifacts.embedding
        self._t_origin = artifacts.t_origin
        self._service_map = artifacts.service_map
        self.stage_statuses = list(artifacts.statuses)
        embedding_hash = KEYEDVECTORS_CODEC.content_hash(artifacts.embedding)
        if embedding_hash != self._embedding_hash:
            # Stale for the new embedding; rebuilt lazily.  A pure
            # cache-hit refit (identical embedding hash, e.g. a warm
            # restart re-running fit against the store) keeps the
            # fitted ANN index instead of paying a full rebuild.
            self._index = None
        self._embedding_hash = embedding_hash

    # ------------------------------------------------------------------
    # Incremental retraining
    # ------------------------------------------------------------------

    def update(
        self,
        new_trace: Trace,
        window_days: float | None = None,
        epochs: int | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
        health_gate: bool | None = None,
        truth: GroundTruth | None = None,
        allow_empty: bool = False,
    ) -> "DarkVec":
        """Append a window of traffic and refit warm — O(delta), not O(full).

        The rolling-window retrain loop of the paper (Fig. 6) and of
        DANTE, generalised from whole days to arbitrary sub-day
        micro-batches: the new trace is merged into the fitted one,
        packets outside the last ``window_days`` days are evicted (at
        dT-window granularity, so retained sentences stay exact), only
        the dT windows the new traffic touches are rebuilt, and the
        embedding is refit **warm**: previously-seen senders resume
        from their prior input and context vectors (fresh senders from
        random initialisation) at the reduced fine-tuning learning rate
        ``config.update_alpha``.

        All window arithmetic goes through one :class:`~repro.corpus.
        windows.WindowGrid` anchored at the first ``fit``'s origin (the
        service map is likewise *not* re-derived, relevant for
        ``"auto"`` services), so successive updates index mutually
        consistent cells.  Because eviction is monotone in the merged
        end time and a mid-window batch rebuilds its boundary cell from
        the *merged* kept trace, N sub-day ``update(window)`` calls
        leave bit-identical corpus and vocabulary to one merged daily
        ``update`` — only the embedding differs, bounded by warm-refit
        drift (property-tested in ``tests/test_serve.py``).

        A report of the work done lands in :attr:`last_update`.

        With a registry attached (store configured) or ``health_gate``
        on, the drift/quality monitors run against the candidate model
        and their verdicts land in :attr:`last_health`; under the gate,
        a ``fail`` verdict **refuses promotion** — the previous fitted
        state stays live (and is what :meth:`save_state` persists) and
        ``last_health.promoted`` is False.

        Args:
            new_trace: the appended traffic (its sender table may be
                completely disjoint from the fitted trace's).
            window_days: rolling-window override; defaults to
                ``config.window_days``.
            epochs: warm-refit epochs; defaults to ``config.update_epochs``.
            progress: optional per-epoch training callback.
            health_gate: gate promotion on the health verdict; defaults
                to ``config.health.gate_updates``.
            truth: optional ground truth enabling the LOO-accuracy
                probe monitor (drop vs the registry's last recorded
                accuracy).
            allow_empty: tolerate an empty ``new_trace`` as a counted
                no-op (``serve.empty_batches``) instead of raising —
                the serve loop's idle ticks must not kill the daemon,
                while the direct batch verb keeps the hard error.
        """
        trace, embedding = self._require_fit()
        if not len(new_trace):
            if allow_empty:
                obs.add("serve.empty_batches")
                return self
            raise ValueError("update requires a non-empty trace")
        config = self.config
        window_days = config.window_days if window_days is None else window_days
        epochs = config.update_epochs if epochs is None else epochs
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        t0 = perf_counter()
        with obs.span("pipeline.update"), pool_backend(self.config.pool_backend):
            merged, remap_old, _ = merge_traces(trace, new_trace)
            prior = KeyedVectors(
                tokens=remap_old[embedding.tokens],
                vectors=embedding.vectors,
                context_vectors=embedding.context_vectors,
            )
            raw = self._raw_corpus.remapped(remap_old)

            builder = CorpusBuilder(self._service_map, delta_t=config.delta_t)
            grid = builder.grid(self._t_origin)
            keep_from = grid.keep_from(merged.end_time, window_days)
            rebuild_from = grid.rebuild_from(new_trace.start_time, keep_from)

            kept_trace = merged.between(grid.start(keep_from), np.inf)
            evicted, rest = raw.split_windows(keep_from)
            retained = [s for s in rest if s.window < rebuild_from]
            rebuild_slice = kept_trace.between(grid.start(rebuild_from), np.inf)
            rebuilt = builder.build(rebuild_slice, t_start=grid.origin)

            sentences = sorted(
                retained + rebuilt.sentences,
                key=lambda s: (s.service_id, s.window),
            )
            new_raw = Corpus(
                sentences=sentences, service_names=raw.service_names
            )

            active = kept_trace.active_senders(config.min_packets)
            vocab = Vocabulary.merge(
                Vocabulary.build([s.tokens for s in retained]),
                Vocabulary.build([s.tokens for s in rebuilt.sentences]),
            ).restricted_to(active)
            warm_tokens = int((prior.rows_of(vocab.tokens) >= 0).sum())

            model = Word2Vec(
                vector_size=config.vector_size,
                context=config.context,
                negative=config.negative,
                epochs=epochs,
                alpha=config.update_alpha,
                seed=config.seed,
                workers=config.workers,
                pool_backend=config.pool_backend,
                progress=progress,
            )
            refit = model.fit(
                [sentence.tokens for sentence in sentences],
                vocab=vocab,
                init=prior,
            )

            prior_state = (
                self.trace,
                self._raw_corpus,
                self._active,
                self.corpus,
                self.embedding,
                self._embedding_hash,
                self._index,
            )
            prior_index = self._index
            self.trace = kept_trace
            self._raw_corpus = new_raw
            self._active = active
            self.corpus = new_raw.filtered_to(active)
            self.embedding = refit
            from repro.io.artifacts import KEYEDVECTORS_CODEC

            self._embedding_hash = KEYEDVECTORS_CODEC.content_hash(refit)
            self._evolve_index(prior_index, prior, refit)
            obs.sample_rss_peak("proc.rss_peak")
            obs.sample_rss_peak_children("proc.rss_peak_children")
            self.last_update = UpdateReport(
                seconds=perf_counter() - t0,
                new_packets=len(new_trace),
                evicted_packets=len(trace) + len(new_trace) - len(kept_trace),
                sentences_retained=len(retained),
                sentences_rebuilt=len(rebuilt.sentences),
                sentences_evicted=len(evicted),
                warm_tokens=warm_tokens,
                new_tokens=len(vocab) - warm_tokens,
            )

            gate = (
                self.config.health.gate_updates
                if health_gate is None
                else health_gate
            )
            if gate or self.registry is not None:
                profile, monitors, loo_accuracy = self._monitor_update(
                    prior, refit, new_trace, truth
                )
                health = HealthReport(monitors=monitors)
                if gate and health.verdict == "fail":
                    # Refuse promotion: the candidate is discarded and
                    # the previously fitted state stays live.
                    (
                        self.trace,
                        self._raw_corpus,
                        self._active,
                        self.corpus,
                        self.embedding,
                        self._embedding_hash,
                        self._index,
                    ) = prior_state
                    health.promoted = False
                    obs.add("health.gate_failures")
                self.last_health = health
                if self.registry is not None:
                    report = self.last_update
                    record_run(
                        self.registry,
                        "update",
                        self.config,
                        wall_seconds=perf_counter() - t0,
                        profile=profile,
                        health=health.to_dict(),
                        extra={
                            "loo_accuracy": loo_accuracy,
                            "new_packets": report.new_packets,
                            "evicted_packets": report.evicted_packets,
                            "warm_tokens": report.warm_tokens,
                            "new_tokens": report.new_tokens,
                        },
                    )
        return self

    # ------------------------------------------------------------------
    # Neighbour index
    # ------------------------------------------------------------------

    def _ann_fingerprint(self) -> str:
        return stage_fingerprint(
            "ann-index",
            STAGE_VERSIONS["ann-index"],
            self.config.stage_fields("ann-index"),
            {"train": self._embedding_hash},
        )

    def _index_codec(self):
        """The artifact codec of the configured ANN backend, or None.

        ``use_mmap`` selects the raw container so a loaded index opens
        its arrays as read-only memmap views instead of heap copies.
        """
        backend = self.config.ann_backend
        if backend == "ivf":
            return IVF_INDEX_RAW_CODEC if self.config.use_mmap else IVF_INDEX_CODEC
        if backend == "ivfpq":
            return (
                IVFPQ_INDEX_RAW_CODEC
                if self.config.use_mmap
                else IVFPQ_INDEX_CODEC
            )
        if backend == "hnsw":
            return (
                HNSW_INDEX_RAW_CODEC
                if self.config.use_mmap
                else HNSW_INDEX_CODEC
            )
        return None

    def _ann_index(self) -> NeighborIndex:
        """The neighbour index over the fitted embedding.

        Built lazily on first use and invalidated whenever the
        embedding changes.  IVF and IVF-PQ indexes are first-class
        pipeline artifacts: with a store configured they are persisted
        under the ``ann-index`` fingerprint (train hash + ANN config
        fields) and loaded back instead of retrained.
        """
        _, embedding = self._require_fit()
        if self._index is not None:
            return self._index
        spec = self.config.ann_spec()
        units = unit_rows(embedding.vectors)
        codec = self._index_codec()
        cacheable = (
            codec is not None
            and self.store is not None
            and self._embedding_hash is not None
        )
        if cacheable:
            fingerprint = self._ann_fingerprint()
            cached = self.store.load("ann-index", fingerprint, codec)
            if cached is not None:
                self._index = cached[0]
                return self._index
        self._index = build_index(units, spec=spec, workers=self.config.workers)
        if cacheable:
            self.store.save("ann-index", fingerprint, codec, self._index)
        return self._index

    def _evolve_index(
        self,
        prior_index: NeighborIndex | None,
        prior: KeyedVectors,
        refit: KeyedVectors,
    ) -> None:
        """Carry the ANN index across a warm update instead of rebuilding.

        Called with the candidate embedding already installed.  Rows
        retained from the prior model keep their inverted list, fresh
        senders join their nearest list, evicted senders drop out; the
        quantizer retrains only past the imbalance threshold (see
        :meth:`repro.ann.ivf.IVFIndex.updated` and the IVF-PQ variant,
        which additionally re-encodes every code).  HNSW evolves the
        layered graph in place: fresh senders are inserted through the
        normal construction beam, evicted senders become tombstones,
        and a full rebuild happens only past the occupancy threshold
        (see :meth:`repro.ann.hnsw.HNSWIndex.updated`).  Without a live
        approximate index of the configured backend there is nothing to
        evolve — the next consumer rebuilds lazily via
        :meth:`_ann_index`.
        """
        from repro.ann.hnsw import HNSWIndex
        from repro.ann.ivf import IVFIndex
        from repro.ann.ivfpq import IVFPQIndex

        self._index = None
        backend = self.config.ann_backend
        if backend == "ivfpq":
            evolvable = isinstance(prior_index, IVFPQIndex)
        elif backend == "ivf":
            evolvable = isinstance(prior_index, IVFIndex) and not isinstance(
                prior_index, IVFPQIndex
            )
        elif backend == "hnsw":
            evolvable = isinstance(prior_index, HNSWIndex)
        else:
            evolvable = False
        if not evolvable:
            return
        prior_rows = prior.rows_of(refit.tokens)
        self._index = prior_index.updated(
            unit_rows(refit.vectors), prior_rows, workers=self.config.workers
        )
        if self.store is not None and self._embedding_hash is not None:
            self.store.save(
                "ann-index",
                self._ann_fingerprint(),
                self._index_codec(),
                self._index,
            )

    # ------------------------------------------------------------------
    # Drift / data-quality monitoring
    # ------------------------------------------------------------------

    def _monitor_ingest(
        self, trace: Trace, kind: str
    ) -> tuple[dict, list[MonitorResult]]:
        """Data-quality monitors of one ingested trace.

        Volume z-scores compare against the registry history of the
        same run ``kind`` (fit volumes against fits, daily updates
        against daily updates); the port mix compares against the most
        recent run that recorded a profile.  Returns the profile (for
        the run record) and the monitor verdicts.
        """
        from repro.obs.quality import data_profile, port_mix_shift, volume_zscore

        policy = self.config.health
        profile = data_profile(trace, self.config.delta_t)
        packet_z = sender_z = shift = None
        if self.registry is not None:
            packet_z = volume_zscore(
                profile["packets"],
                self.registry.history("packets", kind=kind),
                policy.min_history,
            )
            sender_z = volume_zscore(
                profile["senders"],
                self.registry.history("senders", kind=kind),
                policy.min_history,
            )
            previous = next(
                (
                    record["profile"]
                    for record in reversed(self.registry.runs())
                    if record.get("profile")
                ),
                None,
            )
            if previous is not None:
                shift = port_mix_shift(
                    profile["port_mix"], previous.get("port_mix", {})
                )
        empty = profile["empty_window_rate"]
        if packet_z is not None:
            obs.set_gauge("quality.packet_zscore", packet_z)
        if sender_z is not None:
            obs.set_gauge("quality.sender_zscore", sender_z)
        if shift is not None:
            obs.set_gauge("quality.port_mix_shift", shift)
        obs.set_gauge("quality.empty_window_rate", empty)
        monitors = [
            classify(
                "volume.packets",
                None if packet_z is None else abs(packet_z),
                policy.volume_z_warn,
                policy.volume_z_fail,
                detail=f"{profile['packets']} packets",
            ),
            classify(
                "volume.senders",
                None if sender_z is None else abs(sender_z),
                policy.volume_z_warn,
                policy.volume_z_fail,
                detail=f"{profile['senders']} senders",
            ),
            classify(
                "port_mix",
                shift,
                policy.port_shift_warn,
                policy.port_shift_fail,
            ),
            classify(
                "empty_windows",
                empty,
                policy.empty_window_warn,
                policy.empty_window_fail,
            ),
        ]
        return profile, monitors

    def _monitor_update(
        self,
        prior: KeyedVectors,
        refit: KeyedVectors,
        new_trace: Trace,
        truth: GroundTruth | None,
    ) -> tuple[dict, list[MonitorResult], float | None]:
        """Drift + quality monitors of one warm update's candidate model.

        Runs with the candidate state already installed (the LOO probe
        evaluates it); the caller rolls the state back if the verdict
        fails under the gate.  Returns the new-day profile, the monitor
        verdicts, and the probe accuracy (None without ``truth``).
        """
        from repro.obs.drift import (
            cluster_stability,
            embedding_drift,
            neighborhood_churn,
        )

        policy = self.config.health
        # Recall audits recorded from here on belong to this update's
        # candidate; the ann_recall monitor below reads them back.
        ann_audit.reset()
        drift = embedding_drift(prior, refit)
        if drift.mean is not None:
            obs.set_gauge("drift.cosine_displacement", drift.mean)
        monitors = [
            classify(
                "drift",
                drift.mean,
                policy.drift_warn,
                policy.drift_fail,
                detail=(
                    f"{drift.n_shared} retained senders"
                    + ("" if drift.p95 is None else f", p95={drift.p95:.3f}")
                ),
            )
        ]
        churn = neighborhood_churn(
            prior,
            refit,
            k=policy.churn_k,
            workers=self.config.workers,
            spec=self.config.ann_spec(),
        )
        if churn is not None:
            obs.set_gauge("drift.neighbor_churn", churn)
        monitors.append(
            classify(
                "churn",
                churn,
                policy.churn_warn,
                policy.churn_fail,
                detail=f"k={policy.churn_k}",
            )
        )
        stability = cluster_stability(
            prior, refit, k_prime=self.config.k_prime, seed=self.config.seed
        )
        ari, ami = stability if stability is not None else (None, None)
        if ari is not None:
            obs.set_gauge("drift.cluster_ari", ari)
            obs.set_gauge("drift.cluster_ami", ami)
        monitors.append(
            classify(
                "stability",
                ari,
                policy.stability_warn,
                policy.stability_fail,
                direction="low",
                detail="" if ami is None else f"ami={ami:.3f}",
            )
        )
        profile, quality = self._monitor_ingest(new_trace, kind="update")
        monitors.extend(quality)
        loo = None
        if truth is not None:
            try:
                loo = float(self._loo_probe(truth).accuracy)
            except ValueError:
                loo = None  # empty evaluation window: probe not applicable
            baseline = None
            if self.registry is not None:
                history = self.registry.history("loo_accuracy")
                baseline = history[-1] if history else None
            drop = None if loo is None or baseline is None else baseline - loo
            monitors.append(
                classify(
                    "loo",
                    drop,
                    policy.loo_drop_warn,
                    policy.loo_drop_fail,
                    detail="" if loo is None else f"accuracy={loo:.4f}",
                )
            )
        # Approximate-search accuracy of the candidate: the recall@k
        # measured by the audited ANN searches of the monitors above
        # (exact backend: no audit ran, ok with no baseline).
        monitors.append(
            classify(
                "ann_recall",
                ann_audit.last_recall(),
                policy.recall_warn,
                policy.recall_fail,
                direction="low",
                detail=f"backend={self.config.ann_backend}",
            )
        )
        return profile, monitors, loo

    # ------------------------------------------------------------------
    # State persistence
    # ------------------------------------------------------------------

    def save_state(self, path) -> None:
        """Persist the fitted state for later :func:`load_state`/update.

        See :func:`repro.store.state.save_state` for the layout.
        """
        from repro.store.state import save_state

        save_state(self, path)

    @staticmethod
    def load_state(path) -> "DarkVec":
        """Restore a fitted :class:`DarkVec` saved with :meth:`save_state`."""
        from repro.store.state import load_state

        return load_state(path)

    def _require_fit(self) -> tuple[Trace, KeyedVectors]:
        if self.trace is None or self.embedding is None:
            raise NotFittedError(
                "this DarkVec instance is not fitted yet: "
                "call fit(trace) before evaluate()/cluster()"
            )
        return self.trace, self.embedding

    # ------------------------------------------------------------------
    # Semi-supervised analysis
    # ------------------------------------------------------------------

    def evaluation_rows(self, eval_days: float | None = 1.0) -> np.ndarray:
        """Embedding rows of senders present in the evaluation window.

        The paper evaluates on the senders of the last collection day
        that are covered by the embedding; ``eval_days=None`` evaluates
        every embedded sender.  Raises ``ValueError`` when the window
        is empty — no sender of the evaluation period is covered by the
        embedding — instead of producing an empty-slice report.
        """
        trace, embedding = self._require_fit()
        if eval_days is None:
            rows = np.arange(len(embedding))
        else:
            eval_senders = trace.last_days(eval_days).observed_senders()
            rows = embedding.rows_of(eval_senders)
            rows = rows[rows >= 0]
        if len(rows) == 0:
            raise ValueError(
                "empty evaluation window: no sender of the last "
                f"{eval_days if eval_days is not None else 'N/A'} day(s) is "
                "covered by the embedding — train on a window overlapping "
                "the evaluation period or pass eval_days=None"
            )
        return rows

    def evaluate(
        self,
        truth: GroundTruth,
        k: int = 7,
        eval_days: float | None = 1.0,
    ) -> ClassificationReport:
        """Leave-one-out k-NN evaluation (the Table 3/4 protocol).

        Emits the ``eval.accuracy`` gauge and, with a registry
        attached, appends an ``evaluate`` run record whose
        ``loo_accuracy`` becomes the baseline for later health-gated
        updates.  Raises ``ValueError`` when the evaluation window is
        empty (see :meth:`evaluation_rows`).
        """
        self._require_fit()
        t0 = perf_counter()
        with obs.span("pipeline.evaluate", k=k), pool_backend(
            self.config.pool_backend
        ):
            report = self._loo_probe(truth, k=k, eval_days=eval_days)
            obs.set_gauge("eval.accuracy", float(report.accuracy))
            if self.registry is not None:
                record_run(
                    self.registry,
                    "evaluate",
                    self.config,
                    wall_seconds=perf_counter() - t0,
                    extra={
                        "loo_accuracy": float(report.accuracy),
                        "macro_f1": float(report.macro_f()),
                        "k": k,
                    },
                )
            return report

    def _loo_probe(
        self,
        truth: GroundTruth,
        k: int = 7,
        eval_days: float | None = 1.0,
    ) -> ClassificationReport:
        """The LOO computation shared by :meth:`evaluate` and the
        health monitors (which must not append registry records)."""
        trace, embedding = self._require_fit()
        rows = self.evaluation_rows(eval_days)
        labels = truth.labels_for(trace)[embedding.tokens]
        predictions = leave_one_out_predictions(
            embedding.vectors,
            labels,
            rows,
            k=k,
            workers=self.config.workers,
            index=self._ann_index(),
        )
        return classification_report(labels[rows], predictions)

    # ------------------------------------------------------------------
    # Unsupervised analysis
    # ------------------------------------------------------------------

    def _knn_graph(self, k_prime: int) -> KnnGraph:
        """k'-NN graph over the embedding, via the store when possible."""
        embedding = self.embedding
        if self.store is not None and self._embedding_hash is not None:
            fingerprint = stage_fingerprint(
                "knn-index",
                STAGE_VERSIONS["knn-index"],
                self.config.stage_fields("knn-index", k_prime=k_prime),
                {"train": self._embedding_hash},
            )
            cached = self.store.load("knn-index", fingerprint, KNN_GRAPH_CODEC)
            if cached is not None:
                return cached[0]
            graph = build_knn_graph(
                embedding.vectors,
                k_prime=k_prime,
                workers=self.config.workers,
                index=self._ann_index(),
            )
            self.store.save("knn-index", fingerprint, KNN_GRAPH_CODEC, graph)
            return graph
        return build_knn_graph(
            embedding.vectors,
            k_prime=k_prime,
            workers=self.config.workers,
            index=self._ann_index(),
        )

    def cluster(self, k_prime: int | None = None, seed: int = 0) -> ClusterResult:
        """k'-NN graph + Louvain clustering of all embedded senders.

        ``k_prime`` defaults to ``config.k_prime``.  With a store
        configured the knn-index stage artifact is reused when the
        embedding and ``k_prime`` are unchanged.
        """
        self._require_fit()
        if k_prime is None:
            k_prime = self.config.k_prime
        with obs.span("pipeline.cluster", k_prime=k_prime), pool_backend(
            self.config.pool_backend
        ):
            graph = self._knn_graph(k_prime)
            adjacency = graph.symmetric_adjacency()
            communities = louvain_communities(adjacency, seed=seed)
            score = modularity(adjacency, communities)
        return ClusterResult(communities=communities, modularity=score, graph=graph)
