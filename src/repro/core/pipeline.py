"""The DarkVec end-to-end pipeline.

Usage sketch::

    config = DarkVecConfig(service="domain")
    darkvec = DarkVec(config)
    darkvec.fit(trace)                      # corpus + embedding
    report = darkvec.evaluate(truth)        # Table 4-style LOO report
    clusters = darkvec.cluster(k_prime=3)   # Louvain communities
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.core.config import DarkVecConfig
from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus
from repro.graph.knn_graph import KnnGraph, build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import ClassificationReport, classification_report
from repro.labels.groundtruth import GroundTruth
from repro.obs.progress import ProgressEvent
from repro.trace.packet import Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec


class NotFittedError(RuntimeError):
    """Raised when an analysis method runs before :meth:`DarkVec.fit`.

    Subclasses ``RuntimeError`` so pre-existing ``except RuntimeError``
    handlers keep working.
    """


@dataclass
class ClusterResult:
    """Output of the unsupervised stage.

    Attributes:
        communities: community id per embedded sender, aligned with
            ``embedding.tokens``.
        modularity: modularity of the partition on the symmetrised
            k'-NN graph.
        graph: the directed k'-NN graph itself.
    """

    communities: np.ndarray
    modularity: float
    graph: KnnGraph

    @property
    def n_clusters(self) -> int:
        return len(np.unique(self.communities)) if len(self.communities) else 0


class DarkVec:
    """DarkVec pipeline: trace -> corpus -> embedding -> analyses."""

    def __init__(self, config: DarkVecConfig | None = None) -> None:
        self.config = config or DarkVecConfig()
        self.trace: Trace | None = None
        self.corpus: Corpus | None = None
        self.embedding: KeyedVectors | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        trace: Trace,
        progress: Callable[[ProgressEvent], None] | None = None,
    ) -> "DarkVec":
        """Build the corpus of ``trace`` and train the embedding.

        Args:
            trace: packet trace to embed.
            progress: optional per-epoch callback forwarded to
                :class:`~repro.w2v.model.Word2Vec` (receives a
                :class:`~repro.obs.progress.ProgressEvent`).
        """
        with obs.span("pipeline.fit"):
            config = self.config
            active = trace.active_senders(config.min_packets)
            service_map = config.resolve_service_map(trace)
            builder = CorpusBuilder(service_map, delta_t=config.delta_t)
            corpus = builder.build(trace, keep_senders=active)
            model = Word2Vec(
                vector_size=config.vector_size,
                context=config.context,
                negative=config.negative,
                epochs=config.epochs,
                seed=config.seed,
                workers=config.workers,
                progress=progress,
            )
            self.embedding = model.fit(
                [sentence.tokens for sentence in corpus]
            )
            self.trace = trace
            self.corpus = corpus
        return self

    def _require_fit(self) -> tuple[Trace, KeyedVectors]:
        if self.trace is None or self.embedding is None:
            raise NotFittedError(
                "this DarkVec instance is not fitted yet: "
                "call fit(trace) before evaluate()/cluster()"
            )
        return self.trace, self.embedding

    # ------------------------------------------------------------------
    # Semi-supervised analysis
    # ------------------------------------------------------------------

    def evaluation_rows(self, eval_days: float | None = 1.0) -> np.ndarray:
        """Embedding rows of senders present in the evaluation window.

        The paper evaluates on the senders of the last collection day
        that are covered by the embedding; ``eval_days=None`` evaluates
        every embedded sender.
        """
        trace, embedding = self._require_fit()
        if eval_days is None:
            return np.arange(len(embedding))
        eval_senders = trace.last_days(eval_days).observed_senders()
        rows = embedding.rows_of(eval_senders)
        return rows[rows >= 0]

    def evaluate(
        self,
        truth: GroundTruth,
        k: int = 7,
        eval_days: float | None = 1.0,
    ) -> ClassificationReport:
        """Leave-one-out k-NN evaluation (the Table 3/4 protocol)."""
        trace, embedding = self._require_fit()
        with obs.span("pipeline.evaluate", k=k):
            labels = truth.labels_for(trace)[embedding.tokens]
            rows = self.evaluation_rows(eval_days)
            predictions = leave_one_out_predictions(
                embedding.vectors,
                labels,
                rows,
                k=k,
                workers=self.config.workers,
            )
            return classification_report(labels[rows], predictions)

    # ------------------------------------------------------------------
    # Unsupervised analysis
    # ------------------------------------------------------------------

    def cluster(self, k_prime: int = 3, seed: int = 0) -> ClusterResult:
        """k'-NN graph + Louvain clustering of all embedded senders."""
        _, embedding = self._require_fit()
        with obs.span("pipeline.cluster", k_prime=k_prime):
            graph = build_knn_graph(
                embedding.vectors, k_prime=k_prime, workers=self.config.workers
            )
            adjacency = graph.symmetric_adjacency()
            communities = louvain_communities(adjacency, seed=seed)
            score = modularity(adjacency, communities)
        return ClusterResult(communities=communities, modularity=score, graph=graph)
