"""The DarkVec end-to-end pipeline.

Usage sketch::

    config = DarkVecConfig(service="domain")
    darkvec = DarkVec(config)
    darkvec.fit(trace)                      # corpus + embedding
    report = darkvec.evaluate(truth)        # Table 4-style LOO report
    clusters = darkvec.cluster(k_prime=3)   # Louvain communities
    darkvec.update(next_day)                # warm incremental retrain

``fit`` is a thin wrapper over the staged pipeline
(:class:`~repro.core.stages.StagedPipeline`): with no ``cache_dir``
configured it runs fully in memory and is bit-identical to the
historical monolithic path at ``workers=1``; with a cache directory,
every stage is served from the content-addressed artifact store when
its fingerprint matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

import numpy as np

from repro import obs
from repro.core.config import DarkVecConfig
from repro.core.stages import STAGE_VERSIONS, StagedPipeline, StageStatus
from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus, Sentence
from repro.graph.knn_graph import KnnGraph, build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.io.artifacts import KNN_GRAPH_CODEC
from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import ClassificationReport, classification_report
from repro.labels.groundtruth import GroundTruth
from repro.obs.progress import ProgressEvent
from repro.store.cache import ArtifactStore
from repro.store.fingerprint import stage_fingerprint
from repro.trace.merge import merge_traces
from repro.trace.packet import SECONDS_PER_DAY, Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec
from repro.w2v.vocab import Vocabulary


class NotFittedError(RuntimeError):
    """Raised when an analysis method runs before :meth:`DarkVec.fit`.

    Subclasses ``RuntimeError`` so pre-existing ``except RuntimeError``
    handlers keep working.
    """


@dataclass
class ClusterResult:
    """Output of the unsupervised stage.

    Attributes:
        communities: community id per embedded sender, aligned with
            ``embedding.tokens``.
        modularity: modularity of the partition on the symmetrised
            k'-NN graph.
        graph: the directed k'-NN graph itself.
    """

    communities: np.ndarray
    modularity: float
    graph: KnnGraph

    @property
    def n_clusters(self) -> int:
        """Number of distinct communities."""
        return len(np.unique(self.communities)) if len(self.communities) else 0


@dataclass
class UpdateReport:
    """What one incremental :meth:`DarkVec.update` call did.

    Attributes:
        seconds: wall time of the whole update.
        new_packets: packets in the appended trace.
        evicted_packets: packets dropped by the rolling-window eviction.
        sentences_retained: corpus sentences reused untouched.
        sentences_rebuilt: sentences rebuilt from the affected dT windows.
        sentences_evicted: sentences dropped with their windows.
        warm_tokens: vocabulary tokens seeded from the prior embedding.
        new_tokens: vocabulary tokens initialised fresh (unseen senders).
    """

    seconds: float
    new_packets: int
    evicted_packets: int
    sentences_retained: int
    sentences_rebuilt: int
    sentences_evicted: int
    warm_tokens: int
    new_tokens: int


class DarkVec:
    """DarkVec pipeline: trace -> corpus -> embedding -> analyses."""

    def __init__(
        self,
        config: DarkVecConfig | None = None,
        store: ArtifactStore | None = None,
    ) -> None:
        self.config = config or DarkVecConfig()
        if store is None and self.config.cache_dir is not None:
            store = ArtifactStore(self.config.cache_dir)
        self.store = store
        self.trace: Trace | None = None
        self.corpus: Corpus | None = None
        self.embedding: KeyedVectors | None = None
        self.stage_statuses: list[StageStatus] = []
        self.last_update: UpdateReport | None = None
        self._raw_corpus: Corpus | None = None
        self._active: np.ndarray | None = None
        self._t_origin: float = 0.0
        self._service_map = None
        self._embedding_hash: str | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        trace: Trace,
        progress: Callable[[ProgressEvent], None] | None = None,
    ) -> "DarkVec":
        """Build the corpus of ``trace`` and train the embedding.

        Runs the staged pipeline (ingest -> service-map -> corpus ->
        vocab -> train).  With :attr:`store` configured, stages whose
        fingerprints match cached artifacts are loaded instead of
        recomputed; without it, the run is in-memory and bit-identical
        to the historical monolithic path at ``workers=1``.

        Args:
            trace: packet trace to embed.
            progress: optional per-epoch callback forwarded to
                :class:`~repro.w2v.model.Word2Vec` (receives a
                :class:`~repro.obs.progress.ProgressEvent`).
        """
        with obs.span("pipeline.fit"):
            pipeline = StagedPipeline(
                self.config, store=self.store, progress=progress
            )
            artifacts = pipeline.run(trace, until="train")
            self._adopt(artifacts)
        return self

    def _adopt(self, artifacts) -> None:
        """Install the staged-pipeline outputs as the fitted state."""
        self.trace = artifacts.trace
        self._raw_corpus = artifacts.corpus
        self._active = artifacts.active
        self.corpus = artifacts.corpus.filtered_to(artifacts.active)
        self.embedding = artifacts.embedding
        self._t_origin = artifacts.t_origin
        self._service_map = artifacts.service_map
        self.stage_statuses = list(artifacts.statuses)
        from repro.io.artifacts import KEYEDVECTORS_CODEC

        self._embedding_hash = KEYEDVECTORS_CODEC.content_hash(artifacts.embedding)

    # ------------------------------------------------------------------
    # Incremental retraining
    # ------------------------------------------------------------------

    def update(
        self,
        new_trace: Trace,
        window_days: float | None = None,
        epochs: int | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
    ) -> "DarkVec":
        """Append a day of traffic and refit warm — O(delta), not O(full).

        The rolling-window daily-retrain loop of the paper (Fig. 6) and
        of DANTE: the new trace is merged into the fitted one, packets
        outside the last ``window_days`` days are evicted (at dT-window
        granularity, so retained sentences stay exact), only the dT
        windows the new day touches are rebuilt, and the embedding is
        refit **warm**: previously-seen senders resume from their prior
        input and context vectors (fresh senders from random
        initialisation) at the reduced fine-tuning learning rate
        ``config.update_alpha``.

        The dT window grid keeps the origin of the first ``fit`` and
        the service map is *not* re-derived (relevant for ``"auto"``
        services), so successive updates stay mutually consistent.

        A report of the work done lands in :attr:`last_update`.

        Args:
            new_trace: the appended traffic (its sender table may be
                completely disjoint from the fitted trace's).
            window_days: rolling-window override; defaults to
                ``config.window_days``.
            epochs: warm-refit epochs; defaults to ``config.update_epochs``.
            progress: optional per-epoch training callback.
        """
        trace, embedding = self._require_fit()
        if not len(new_trace):
            raise ValueError("update requires a non-empty trace")
        config = self.config
        window_days = config.window_days if window_days is None else window_days
        epochs = config.update_epochs if epochs is None else epochs
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        t0 = perf_counter()
        with obs.span("pipeline.update"):
            merged, remap_old, _ = merge_traces(trace, new_trace)
            prior = KeyedVectors(
                tokens=remap_old[embedding.tokens],
                vectors=embedding.vectors,
                context_vectors=embedding.context_vectors,
            )
            raw = self._raw_corpus.remapped(remap_old)

            delta_t = config.delta_t
            origin = self._t_origin
            keep_from = int(
                np.floor(
                    (merged.end_time - window_days * SECONDS_PER_DAY - origin)
                    / delta_t
                )
            )
            keep_from = max(keep_from, 0)
            rebuild_from = max(
                int(np.floor((new_trace.start_time - origin) / delta_t)),
                keep_from,
            )

            kept_trace = merged.between(origin + keep_from * delta_t, np.inf)
            evicted, rest = raw.split_windows(keep_from)
            retained = [s for s in rest if s.window < rebuild_from]
            rebuild_slice = kept_trace.between(
                origin + rebuild_from * delta_t, np.inf
            )
            rebuilt = CorpusBuilder(self._service_map, delta_t=delta_t).build(
                rebuild_slice, t_start=origin
            )

            sentences = sorted(
                retained + rebuilt.sentences,
                key=lambda s: (s.service_id, s.window),
            )
            new_raw = Corpus(
                sentences=sentences, service_names=raw.service_names
            )

            active = kept_trace.active_senders(config.min_packets)
            vocab = Vocabulary.merge(
                Vocabulary.build([s.tokens for s in retained]),
                Vocabulary.build([s.tokens for s in rebuilt.sentences]),
            ).restricted_to(active)
            warm_tokens = int((prior.rows_of(vocab.tokens) >= 0).sum())

            model = Word2Vec(
                vector_size=config.vector_size,
                context=config.context,
                negative=config.negative,
                epochs=epochs,
                alpha=config.update_alpha,
                seed=config.seed,
                workers=config.workers,
                progress=progress,
            )
            refit = model.fit(
                [sentence.tokens for sentence in sentences],
                vocab=vocab,
                init=prior,
            )

            self.trace = kept_trace
            self._raw_corpus = new_raw
            self._active = active
            self.corpus = new_raw.filtered_to(active)
            self.embedding = refit
            from repro.io.artifacts import KEYEDVECTORS_CODEC

            self._embedding_hash = KEYEDVECTORS_CODEC.content_hash(refit)
            self.last_update = UpdateReport(
                seconds=perf_counter() - t0,
                new_packets=len(new_trace),
                evicted_packets=len(trace) + len(new_trace) - len(kept_trace),
                sentences_retained=len(retained),
                sentences_rebuilt=len(rebuilt.sentences),
                sentences_evicted=len(evicted),
                warm_tokens=warm_tokens,
                new_tokens=len(vocab) - warm_tokens,
            )
        return self

    # ------------------------------------------------------------------
    # State persistence
    # ------------------------------------------------------------------

    def save_state(self, path) -> None:
        """Persist the fitted state for later :func:`load_state`/update.

        See :func:`repro.store.state.save_state` for the layout.
        """
        from repro.store.state import save_state

        save_state(self, path)

    @staticmethod
    def load_state(path) -> "DarkVec":
        """Restore a fitted :class:`DarkVec` saved with :meth:`save_state`."""
        from repro.store.state import load_state

        return load_state(path)

    def _require_fit(self) -> tuple[Trace, KeyedVectors]:
        if self.trace is None or self.embedding is None:
            raise NotFittedError(
                "this DarkVec instance is not fitted yet: "
                "call fit(trace) before evaluate()/cluster()"
            )
        return self.trace, self.embedding

    # ------------------------------------------------------------------
    # Semi-supervised analysis
    # ------------------------------------------------------------------

    def evaluation_rows(self, eval_days: float | None = 1.0) -> np.ndarray:
        """Embedding rows of senders present in the evaluation window.

        The paper evaluates on the senders of the last collection day
        that are covered by the embedding; ``eval_days=None`` evaluates
        every embedded sender.  Raises ``ValueError`` when the window
        is empty — no sender of the evaluation period is covered by the
        embedding — instead of producing an empty-slice report.
        """
        trace, embedding = self._require_fit()
        if eval_days is None:
            rows = np.arange(len(embedding))
        else:
            eval_senders = trace.last_days(eval_days).observed_senders()
            rows = embedding.rows_of(eval_senders)
            rows = rows[rows >= 0]
        if len(rows) == 0:
            raise ValueError(
                "empty evaluation window: no sender of the last "
                f"{eval_days if eval_days is not None else 'N/A'} day(s) is "
                "covered by the embedding — train on a window overlapping "
                "the evaluation period or pass eval_days=None"
            )
        return rows

    def evaluate(
        self,
        truth: GroundTruth,
        k: int = 7,
        eval_days: float | None = 1.0,
    ) -> ClassificationReport:
        """Leave-one-out k-NN evaluation (the Table 3/4 protocol).

        Raises ``ValueError`` when the evaluation window is empty (see
        :meth:`evaluation_rows`).
        """
        trace, embedding = self._require_fit()
        rows = self.evaluation_rows(eval_days)
        with obs.span("pipeline.evaluate", k=k):
            labels = truth.labels_for(trace)[embedding.tokens]
            predictions = leave_one_out_predictions(
                embedding.vectors,
                labels,
                rows,
                k=k,
                workers=self.config.workers,
            )
            return classification_report(labels[rows], predictions)

    # ------------------------------------------------------------------
    # Unsupervised analysis
    # ------------------------------------------------------------------

    def _knn_graph(self, k_prime: int) -> KnnGraph:
        """k'-NN graph over the embedding, via the store when possible."""
        embedding = self.embedding
        if self.store is not None and self._embedding_hash is not None:
            fingerprint = stage_fingerprint(
                "knn-index",
                STAGE_VERSIONS["knn-index"],
                self.config.stage_fields("knn-index", k_prime=k_prime),
                {"train": self._embedding_hash},
            )
            cached = self.store.load("knn-index", fingerprint, KNN_GRAPH_CODEC)
            if cached is not None:
                return cached[0]
            graph = build_knn_graph(
                embedding.vectors, k_prime=k_prime, workers=self.config.workers
            )
            self.store.save("knn-index", fingerprint, KNN_GRAPH_CODEC, graph)
            return graph
        return build_knn_graph(
            embedding.vectors, k_prime=k_prime, workers=self.config.workers
        )

    def cluster(self, k_prime: int | None = None, seed: int = 0) -> ClusterResult:
        """k'-NN graph + Louvain clustering of all embedded senders.

        ``k_prime`` defaults to ``config.k_prime``.  With a store
        configured the knn-index stage artifact is reused when the
        embedding and ``k_prime`` are unchanged.
        """
        self._require_fit()
        if k_prime is None:
            k_prime = self.config.k_prime
        with obs.span("pipeline.cluster", k_prime=k_prime):
            graph = self._knn_graph(k_prime)
            adjacency = graph.symmetric_adjacency()
            communities = louvain_communities(adjacency, seed=seed)
            score = modularity(adjacency, communities)
        return ClusterResult(communities=communities, modularity=score, graph=graph)
