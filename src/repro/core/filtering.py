"""Active-sender filtering and embedding coverage (Sections 3.1, 6.2.1)."""

from __future__ import annotations

import numpy as np

from repro.trace.packet import Trace


def active_filter(trace: Trace, min_packets: int = 10) -> np.ndarray:
    """Sender indices with at least ``min_packets`` packets in ``trace``.

    This is the paper's filter: senders below the threshold are
    occasional (often backscatter) and carry too little evidence.
    """
    return trace.active_senders(min_packets)


def coverage(
    training_trace: Trace,
    evaluation_trace: Trace,
    min_packets: int = 10,
    eval_senders: np.ndarray | None = None,
) -> float:
    """Fraction of evaluation senders covered by the embedding.

    A sender is covered when it is active (>= ``min_packets``) in the
    training window; Figure 6 plots this against the training length.
    Both traces must share the sender table (come from one base trace).

    Args:
        eval_senders: the population whose coverage is measured.
            Defaults to all senders observed in the evaluation trace;
            the paper restricts it to labelled senders, which makes the
            full-window coverage 100% by construction.
    """
    if training_trace.n_senders != evaluation_trace.n_senders:
        raise ValueError("traces must share the sender table")
    if eval_senders is None:
        eval_senders = evaluation_trace.observed_senders()
    eval_senders = np.asarray(eval_senders, dtype=np.int64)
    if len(eval_senders) == 0:
        return 0.0
    active = np.zeros(training_trace.n_senders, dtype=bool)
    active[training_trace.active_senders(min_packets)] = True
    return float(active[eval_senders].mean())
