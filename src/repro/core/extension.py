"""Ground-truth extension (Section 6.4).

Unknown senders classified into a ground-truth class are accepted as
new members when their mean distance to their k nearest neighbours does
not exceed the largest such distance among the class's true members —
the paper's manual-stop rule, automated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.base import AnnSpec, NeighborIndex
from repro.knn.classifier import CosineKnn
from repro.labels.groundtruth import UNKNOWN


@dataclass
class ExtensionResult:
    """Unknown rows accepted into each class, with their distances."""

    accepted: dict[str, np.ndarray]
    distances: dict[str, np.ndarray]

    @property
    def total_accepted(self) -> int:
        return sum(len(rows) for rows in self.accepted.values())


def extend_ground_truth(
    vectors: np.ndarray,
    labels: np.ndarray,
    k: int = 7,
    workers: int = 1,
    spec: AnnSpec | None = None,
    index: NeighborIndex | None = None,
) -> ExtensionResult:
    """Propose new class members among the Unknown senders.

    Args:
        vectors: embedding matrix.
        labels: label per row (``Unknown`` for unlabeled senders).
        k: neighbourhood size.
        workers: parallelism of the neighbour searches.
        spec: search-backend selection (None = exact).
        index: reuse an already-built index over the same vectors.

    Returns:
        Per class, the Unknown row indices accepted, sorted by
        increasing mean neighbour distance (most confident first).
    """
    labels = np.asarray(labels, dtype=object)
    classifier = CosineKnn(
        vectors, labels, k=k, workers=workers, spec=spec, index=index
    )
    unknown_rows = np.flatnonzero(labels == UNKNOWN)
    known_rows = np.flatnonzero(labels != UNKNOWN)
    accepted: dict[str, np.ndarray] = {}
    distances: dict[str, np.ndarray] = {}
    if len(unknown_rows) == 0 or len(known_rows) == 0:
        return ExtensionResult(accepted=accepted, distances=distances)

    unknown_pred = classifier.predict_rows(unknown_rows, exclude_self=True)
    unknown_dist = classifier.neighbor_distances(unknown_rows, exclude_self=True)
    known_dist = classifier.neighbor_distances(known_rows, exclude_self=True)

    for name in sorted({label for label in labels if label != UNKNOWN}):
        class_rows = known_rows[labels[known_rows] == name]
        if len(class_rows) == 0:
            continue
        threshold = float(known_dist[labels[known_rows] == name].max())
        mask = (unknown_pred == name) & (unknown_dist <= threshold)
        candidate_rows = unknown_rows[mask]
        candidate_dist = unknown_dist[mask]
        order = np.argsort(candidate_dist)
        accepted[name] = candidate_rows[order]
        distances[name] = candidate_dist[order]
    return ExtensionResult(accepted=accepted, distances=distances)
