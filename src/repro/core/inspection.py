"""Cluster inspection (Section 7.3, Table 5).

The paper characterises each detected cluster by hand: targeted ports,
address layout (same /24? same /16? scattered?), temporal pattern and
matches against security databases.  This module automates the
measurable parts; the simulator's ground truth plays the role of the
databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.services.ports import format_port
from repro.trace.address import subnet16, subnet24
from repro.trace.packet import Trace


@dataclass
class ClusterProfile:
    """Summary of one detected cluster.

    Attributes:
        cluster_id: community id.
        sender_rows: embedding rows of the members.
        senders: trace sender indices of the members.
        n_packets: packets the members sent in the inspected trace.
        n_ports: distinct (port, proto) pairs targeted.
        top_ports: ``(formatted_port, traffic_share)`` pairs, descending.
        n_subnets24 / n_subnets16: distinct /24 and /16 networks.
        silhouette: mean member silhouette (filled by the caller).
        label_composition: ground-truth label -> member count.
    """

    cluster_id: int
    sender_rows: np.ndarray
    senders: np.ndarray
    n_packets: int
    n_ports: int
    top_ports: list[tuple[str, float]]
    n_subnets24: int
    n_subnets16: int
    silhouette: float = 0.0
    label_composition: dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.senders)

    @property
    def dominant_label(self) -> str:
        """Most common ground-truth label among members."""
        if not self.label_composition:
            return "Unknown"
        return max(self.label_composition, key=self.label_composition.get)

    def port_share(self, formatted_port: str) -> float:
        """Traffic share of one port (0 when not in the top list)."""
        for name, share in self.top_ports:
            if name == formatted_port:
                return share
        return 0.0


def inspect_clusters(
    trace: Trace,
    embedding_tokens: np.ndarray,
    communities: np.ndarray,
    silhouettes: dict[int, float] | None = None,
    labels: np.ndarray | None = None,
    top_ports: int = 5,
    min_size: int = 1,
) -> list[ClusterProfile]:
    """Build a :class:`ClusterProfile` for every community.

    Args:
        trace: the trace the embedding was trained on.
        embedding_tokens: sender index per embedding row.
        communities: community id per embedding row.
        silhouettes: optional per-cluster mean silhouettes.
        labels: optional per-*sender-index* ground-truth label array.
        top_ports: how many ports to report per cluster.
        min_size: skip clusters smaller than this.

    Returns:
        Profiles sorted by decreasing cluster size.
    """
    embedding_tokens = np.asarray(embedding_tokens, dtype=np.int64)
    communities = np.asarray(communities)
    if len(embedding_tokens) != len(communities):
        raise ValueError("tokens and communities must align")

    profiles = []
    for cluster_id in np.unique(communities):
        rows = np.flatnonzero(communities == cluster_id)
        if len(rows) < min_size:
            continue
        senders = embedding_tokens[rows]
        sub_trace = trace.from_senders(senders)
        port_counts = sub_trace.port_packet_counts()
        total = sum(port_counts.values())
        ranked = sorted(port_counts.items(), key=lambda kv: kv[1], reverse=True)
        top = [
            (format_port(port, proto), count / total)
            for (port, proto), count in ranked[:top_ports]
        ]
        ips = trace.sender_ips[senders]
        profile = ClusterProfile(
            cluster_id=int(cluster_id),
            sender_rows=rows,
            senders=senders,
            n_packets=total,
            n_ports=len(port_counts),
            top_ports=top,
            n_subnets24=len({subnet24(ip) for ip in ips}),
            n_subnets16=len({subnet16(ip) for ip in ips}),
        )
        if silhouettes is not None:
            profile.silhouette = silhouettes.get(int(cluster_id), 0.0)
        if labels is not None:
            composition: dict[str, int] = {}
            for sender in senders:
                label = labels[sender]
                composition[label] = composition.get(label, 0) + 1
            profile.label_composition = composition
        profiles.append(profile)
    profiles.sort(key=lambda p: p.size, reverse=True)
    return profiles


def port_jaccard(trace: Trace, senders_a: np.ndarray, senders_b: np.ndarray) -> float:
    """Jaccard index of the port sets targeted by two sender groups.

    Used in Section 7.3.1 to show Censys shifts scan disjoint slices
    (average inter-cluster Jaccard of 0.19).
    """
    ports_a = set(trace.from_senders(senders_a).port_packet_counts())
    ports_b = set(trace.from_senders(senders_b).port_packet_counts())
    union = ports_a | ports_b
    if not union:
        return 0.0
    return len(ports_a & ports_b) / len(union)
