"""Automatic cluster characterisation (automates Section 7.3).

The paper's analysts labelled each cluster by hand from port
fingerprints, address layout and temporal shape.  This module encodes
those heuristics so the unsupervised pipeline can annotate its own
findings: subnet-confined scanners, Mirai-fingerprinted botnets,
worm-like ramp-ups, horizontal scanners with flat port shares, and
periodic campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.regularity import PeriodicityResult, periodicity
from repro.core.inspection import ClusterProfile
from repro.trace.packet import SECONDS_PER_DAY, Trace


@dataclass
class ClusterFinding:
    """A cluster plus the automatically derived narrative."""

    profile: ClusterProfile
    traits: list[str] = field(default_factory=list)
    period: PeriodicityResult | None = None

    @property
    def headline(self) -> str:
        """One-line description in the style of Table 5."""
        top = self.profile.top_ports[0][0] if self.profile.top_ports else "?"
        traits = "; ".join(self.traits) if self.traits else "no clear traits"
        return (
            f"C{self.profile.cluster_id}: {self.profile.size} IPs, "
            f"top port {top} — {traits}"
        )


def _mirai_share(trace: Trace, senders: np.ndarray) -> float:
    sub = trace.from_senders(senders)
    if not len(sub):
        return 0.0
    flagged = np.unique(sub.senders[sub.mirai])
    return len(flagged) / len(np.unique(sub.senders))


def _is_ramping(trace: Trace, senders: np.ndarray) -> bool:
    sub = trace.from_senders(senders)
    if len(sub) < 20 or trace.duration_days < 3:
        return False
    bins = (
        (sub.times - trace.start_time) / SECONDS_PER_DAY
    ).astype(int)
    n_days = int(np.ceil(trace.duration_days))
    daily: list[int] = []
    for day in range(n_days):
        daily.append(len(np.unique(sub.senders[bins == day])))
    third = max(n_days // 3, 1)
    early = float(np.mean(daily[:third]))
    late = float(np.mean(daily[-third:]))
    return late > max(early, 1.0) * 2.0


def _port_share_flatness(profile: ClusterProfile) -> float:
    """Top-port dominance: low values mean an equal-share scan."""
    if not profile.top_ports:
        return 1.0
    return profile.top_ports[0][1]


def _dominant_subnet24_share(trace: Trace, senders: np.ndarray) -> float:
    ips = trace.sender_ips[np.asarray(senders, dtype=np.int64)]
    subnets = (ips.astype(np.int64) >> 8).astype(np.int64)
    if not len(subnets):
        return 0.0
    _, counts = np.unique(subnets, return_counts=True)
    return float(counts.max() / len(subnets))


def describe_cluster(
    trace: Trace,
    profile: ClusterProfile,
    check_period: bool = True,
) -> ClusterFinding:
    """Derive the Table 5-style traits of one cluster."""
    traits: list[str] = []

    subnet_share = _dominant_subnet24_share(trace, profile.senders)
    if subnet_share >= 0.8 and profile.size >= 5:
        traits.append(
            f"{subnet_share:.0%} of senders in one /24 subnet"
        )
    elif profile.n_subnets16 == 1 and profile.n_subnets24 > 1:
        traits.append("all senders in one /16 block")
    elif profile.n_subnets24 >= profile.size * 0.9 and profile.size >= 20:
        traits.append("senders scattered across subnets (botnet-like)")

    mirai = _mirai_share(trace, profile.senders)
    if mirai > 0.5:
        traits.append(f"{mirai:.0%} of senders carry the Mirai fingerprint")

    if _is_ramping(trace, profile.senders):
        traits.append("sender population ramps up (worm-like spread)")

    if (
        profile.n_ports >= 30
        and _port_share_flatness(profile) < 0.1
    ):
        traits.append(
            f"almost equal share over {profile.n_ports} ports "
            "(horizontal scan)"
        )

    period = None
    if check_period:
        period = periodicity(trace, profile.senders)
        if period.is_regular:
            hours = period.period_seconds / 3600.0
            traits.append(f"regular activity with ~{hours:.1f} h period")

    return ClusterFinding(profile=profile, traits=traits, period=period)


def describe_clusters(
    trace: Trace,
    profiles: list[ClusterProfile],
    check_period: bool = True,
) -> list[ClusterFinding]:
    """Characterise every cluster, largest first."""
    return [
        describe_cluster(trace, profile, check_period=check_period)
        for profile in profiles
    ]
