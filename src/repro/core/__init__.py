"""DarkVec core pipeline (the paper's primary contribution).

Ties the substrates together: activity filtering, service definition,
corpus construction, Word2Vec embedding, semi-supervised k-NN
evaluation, unsupervised graph clustering, and cluster inspection.
"""

from repro.core.config import DarkVecConfig
from repro.core.extension import extend_ground_truth
from repro.core.filtering import active_filter, coverage
from repro.core.inspection import ClusterProfile, inspect_clusters
from repro.core.pipeline import ClusterResult, DarkVec, NotFittedError
from repro.core.report import ClusterFinding, describe_cluster, describe_clusters

__all__ = [
    "ClusterFinding",
    "ClusterProfile",
    "ClusterResult",
    "describe_cluster",
    "describe_clusters",
    "DarkVec",
    "DarkVecConfig",
    "NotFittedError",
    "active_filter",
    "coverage",
    "extend_ground_truth",
    "inspect_clusters",
]
