"""Shard-by-shard streaming builds for the corpus and vocab stages.

The full-trace corpus build materialises the whole (service, window)
sentence set at once; at millions of senders that working set dominates
RSS.  These helpers stream the same computation over ΔT-window ranges
sized so that each shard covers at most ``shard_size`` distinct
senders, and are **bit-identical** to the one-pass build:

- every (service, window) cell lies in exactly one window range, so
  sub-builds never split or merge sentences;
- each sub-build uses the global ``t_origin``, so window indices match
  the full build's;
- the full build orders sentences by ``lexsort((windows, service_ids))``
  — i.e. by ``(service_id, window)`` — and emits exactly one sentence
  per cell, so re-sorting the concatenated shard sentences by that key
  reproduces the full ordering with no ties to break;
- :meth:`~repro.w2v.vocab.Vocabulary.merge` is an exact union + int64
  count sum, so chunk-wise accumulation equals one global count.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus
from repro.corpus.windows import WindowGrid
from repro.services.base import ServiceMap
from repro.trace.packet import Trace
from repro.w2v.vocab import Vocabulary


def shard_ranges(n: int, size: int) -> list[tuple[int, int]]:
    """Half-open ``[lo, hi)`` ranges covering ``0..n`` in steps of ``size``."""
    if size < 1:
        raise ValueError("shard size must be positive")
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def _slice_trace(trace: Trace, lo: int, hi: int) -> Trace:
    """Row-range view of a time-sorted trace (no column copies).

    ``sender_ips`` is the sender-interning table, not a packet column —
    it stays whole so shard tokens keep their global sender indices.
    """
    return Trace(
        times=trace.times[lo:hi],
        senders=trace.senders[lo:hi],
        ports=trace.ports[lo:hi],
        protos=trace.protos[lo:hi],
        receivers=trace.receivers[lo:hi],
        mirai=trace.mirai[lo:hi],
        sender_ips=trace.sender_ips,
    )


def plan_window_shards(
    windows: np.ndarray,
    senders: np.ndarray,
    shard_size: int,
) -> list[tuple[int, int]]:
    """Window-index ranges each covering <= ``shard_size`` distinct senders.

    ``windows`` must be the non-decreasing per-packet window indices of
    a time-sorted trace.  Ranges are half-open ``[w_lo, w_hi)`` and
    greedy: consecutive windows accumulate until the distinct-sender
    budget would overflow, with at least one window per shard (a single
    window busier than the budget still forms its own shard).
    """
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    if len(windows) == 0:
        return []
    n_senders = int(senders.max()) + 1 if len(senders) else 1
    cell_key = windows.astype(np.int64) * n_senders + senders.astype(np.int64)
    window_of_cell = np.unique(cell_key) // n_senders
    window_values, window_counts = np.unique(window_of_cell, return_counts=True)

    ranges: list[tuple[int, int]] = []
    range_start = int(window_values[0])
    budget = 0
    for window, count in zip(window_values, window_counts):
        if budget and budget + int(count) > shard_size:
            ranges.append((range_start, int(window)))
            range_start = int(window)
            budget = 0
        budget += int(count)
    ranges.append((range_start, int(window_values[-1]) + 1))
    return ranges


def build_corpus_sharded(
    trace: Trace,
    service_map: ServiceMap,
    delta_t: float,
    shard_size: int,
    t_origin: float,
) -> Corpus:
    """Streaming corpus build, bit-identical to the one-pass build."""
    if not len(trace):
        return CorpusBuilder(service_map, delta_t=delta_t).build(
            trace, t_start=t_origin
        )
    builder = CorpusBuilder(service_map, delta_t=delta_t)
    windows = builder.grid(t_origin).indices(trace.times)
    sentences = []
    for w_lo, w_hi in plan_window_shards(windows, trace.senders, shard_size):
        lo = int(np.searchsorted(windows, w_lo, side="left"))
        hi = int(np.searchsorted(windows, w_hi, side="left"))
        if lo == hi:
            continue
        shard = builder.build(_slice_trace(trace, lo, hi), t_start=t_origin)
        sentences.extend(shard.sentences)
    sentences.sort(key=lambda s: (s.service_id, s.window))
    return Corpus(sentences=sentences, service_names=service_map.names)


def build_vocab_streaming(
    token_arrays: list[np.ndarray],
    chunk_tokens: int,
    min_count: int = 1,
) -> Vocabulary:
    """Chunk-accumulated vocabulary, equal to one global count.

    Sentences are consumed in order; each chunk holds at most
    ``chunk_tokens`` tokens (one oversized sentence still forms a
    chunk).  ``min_count`` prunes *after* accumulation, matching
    :meth:`Vocabulary.build` over the whole corpus.
    """
    if chunk_tokens < 1:
        raise ValueError("chunk_tokens must be positive")
    vocab = Vocabulary(
        tokens=np.empty(0, dtype=np.int64), counts=np.empty(0, dtype=np.int64)
    )
    chunk: list[np.ndarray] = []
    held = 0
    for tokens in token_arrays:
        chunk.append(tokens)
        held += len(tokens)
        if held >= chunk_tokens:
            vocab = Vocabulary.merge(vocab, Vocabulary.build(chunk, min_count=1))
            chunk, held = [], 0
    if chunk:
        vocab = Vocabulary.merge(vocab, Vocabulary.build(chunk, min_count=1))
    keep = vocab.counts >= min_count
    return Vocabulary(tokens=vocab.tokens[keep], counts=vocab.counts[keep])
