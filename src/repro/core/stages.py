"""The explicit stage graph behind :meth:`DarkVec.fit`.

The monolithic ``fit`` is decomposed into six stages::

    ingest ──► service-map ──► corpus ──► vocab ──► train ──► knn-index
       │____________│____________▲          ▲
       │_________________________│__________│

Each stage consumes and produces persistable artifacts.  When an
:class:`~repro.store.cache.ArtifactStore` is configured, every stage is
keyed by a fingerprint of (stage code version, the config fields it
reads, the content hashes of its upstream artifacts): re-running with
an unchanged config is a pure cache hit, and flipping one knob re-runs
exactly the stages downstream of it.

The staged path is **bit-identical** to the historical monolithic
``fit`` at ``workers=1``: the corpus stage builds *unfiltered*
sentences and the vocab stage applies the activity filter at
vocabulary level, which provably yields the same encoded sentences
(filtering tokens before or after (service, dT) grouping produces the
same per-cell subsequences, and empty sentences are dropped by the
trainer in both paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from repro import obs
from repro.core.config import DarkVecConfig
from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus
from repro.graph.knn_graph import KnnGraph, build_knn_graph
from repro.core.sharding import build_corpus_sharded, build_vocab_streaming
from repro.io.artifacts import (
    CORPUS_CODEC,
    CORPUS_RAW_CODEC,
    KEYEDVECTORS_CODEC,
    KEYEDVECTORS_RAW_CODEC,
    KNN_GRAPH_CODEC,
    SERVICE_MAP_CODEC,
    TRACE_CODEC,
    TRACE_RAW_CODEC,
    VOCAB_CODEC,
    trace_content_hash,
)
from repro.obs.progress import ProgressEvent
from repro.services import service_map_from_spec
from repro.services.base import ServiceMap
from repro.store.cache import ArtifactStore
from repro.store.fingerprint import stable_hash, stage_fingerprint
from repro.trace.packet import Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec
from repro.w2v.vocab import Vocabulary

#: Execution order of the stage graph.
STAGE_ORDER = ("ingest", "service-map", "corpus", "vocab", "train", "knn-index")

#: Code version per stage; bump when a stage's semantics change so
#: stale cached artifacts stop matching.
STAGE_VERSIONS = {
    "ingest": 1,
    "service-map": 1,
    "corpus": 1,
    "vocab": 1,
    "train": 1,
    "knn-index": 1,
    # Not part of STAGE_ORDER: the ANN index is a lazily-built sibling
    # artifact of knn-index, keyed off the train hash (see
    # DarkVec._ann_index).
    "ann-index": 1,
}


@dataclass(frozen=True)
class StageStatus:
    """Outcome of one stage execution.

    Attributes:
        stage: stage name.
        status: ``"hit"`` (loaded from the store), ``"miss"`` (computed
            and written), or ``"uncached"`` (computed; no store, or the
            artifact is not serialisable).
        seconds: wall time of the stage, including store I/O.
        fingerprint: the stage's cache key ("-" when uncacheable).
    """

    stage: str
    status: str
    seconds: float
    fingerprint: str


@dataclass
class PipelineArtifacts:
    """Everything the staged pipeline produced.

    Attributes:
        trace: the ingested trace (shared with the caller).
        trace_hash: content hash of the trace.
        service_map: resolved service map.
        corpus: the **unfiltered** corpus (every observed sender); use
            :meth:`~repro.corpus.document.Corpus.filtered_to` with
            ``active`` for the paper's activity-filtered view.
        active: sender indices passing the activity filter.
        vocab: activity-filtered training vocabulary.
        embedding: trained sender embedding.
        graph: directed k'-NN graph (None unless the knn-index stage ran).
        t_origin: origin of the dT window grid (first packet time).
        statuses: per-stage cache outcomes, in execution order.
    """

    trace: Trace
    trace_hash: str
    service_map: ServiceMap
    corpus: Corpus
    active: np.ndarray
    vocab: Vocabulary
    embedding: KeyedVectors | None = None
    graph: KnnGraph | None = None
    t_origin: float = 0.0
    statuses: list[StageStatus] = field(default_factory=list)

    def hits(self) -> int:
        """Number of stages served from the artifact store."""
        return sum(1 for status in self.statuses if status.status == "hit")


class StagedPipeline:
    """Runs the stage graph, consulting an optional artifact store."""

    def __init__(
        self,
        config: DarkVecConfig,
        store: ArtifactStore | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        self.config = config
        self.store = store
        self.progress = progress

    # ------------------------------------------------------------------
    # Stage runner plumbing
    # ------------------------------------------------------------------

    def _run_stage(
        self,
        stage: str,
        fields: dict,
        upstream: dict[str, str],
        codec,
        compute: Callable[[], object],
        statuses: list[StageStatus],
        inputs: dict[str, str] | None = None,
        cacheable: bool = True,
    ) -> tuple[object, str]:
        """Load-or-compute one stage; returns (artifact, content hash)."""
        t0 = perf_counter()
        with obs.span(f"stage.{stage}") as sp:
            if not cacheable or self.store is None:
                obj = compute()
                content_hash = codec.content_hash(obj)
                status = "uncached"
                fingerprint = "-"
            else:
                fingerprint = stage_fingerprint(
                    stage, STAGE_VERSIONS[stage], fields, upstream, inputs
                )
                cached = self.store.load(stage, fingerprint, codec)
                if cached is not None:
                    obj, content_hash = cached
                    status = "hit"
                else:
                    obj = compute()
                    content_hash = self.store.save(stage, fingerprint, codec, obj)
                    status = "miss"
            sp.set(status=status)
        obs.sample_rss_peak("proc.rss_peak")
        obs.sample_rss_peak_children("proc.rss_peak_children")
        seconds = perf_counter() - t0
        if obs.current().enabled:
            obs.observe("stage.seconds", seconds)
        statuses.append(
            StageStatus(
                stage=stage,
                status=status,
                seconds=seconds,
                fingerprint=fingerprint,
            )
        )
        return obj, content_hash

    def _codec_for(self, npz_codec, raw_codec):
        """The configured container for a large-matrix artifact."""
        return raw_codec if self.config.use_mmap else npz_codec

    # ------------------------------------------------------------------
    # The graph
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        until: str = "train",
        warm_init: KeyedVectors | None = None,
    ) -> PipelineArtifacts:
        """Execute stages in order up to and including ``until``.

        ``warm_init`` seeds the train stage from a prior embedding (and
        is folded into the train fingerprint, so warm and cold results
        never collide in the store).
        """
        if until not in STAGE_ORDER:
            raise ValueError(f"unknown stage {until!r}; expected {STAGE_ORDER}")
        last = STAGE_ORDER.index(until)
        config = self.config
        statuses: list[StageStatus] = []

        # -- ingest: canonicalise + hash the input trace -------------------
        trace_codec = self._codec_for(TRACE_CODEC, TRACE_RAW_CODEC)
        trace_hash = trace_content_hash(trace)
        t0 = perf_counter()
        with obs.span("stage.ingest") as sp:
            if obs.current().enabled and len(trace):
                counts = trace.packet_counts()
                obs.observe_many("ingest.sender_packets", counts[counts > 0])
            if self.store is None:
                ingest_status = "uncached"
                ingest_fp = "-"
            else:
                ingest_fp = stage_fingerprint(
                    "ingest",
                    STAGE_VERSIONS["ingest"],
                    config.stage_fields("ingest"),
                    {},
                    {"trace": trace_hash},
                )
                if self.store.verify("ingest", ingest_fp, trace_codec) is not None:
                    ingest_status = "hit"
                else:
                    self.store.save("ingest", ingest_fp, trace_codec, trace)
                    ingest_status = "miss"
            sp.set(status=ingest_status)
        obs.sample_rss_peak("proc.rss_peak")
        obs.sample_rss_peak_children("proc.rss_peak_children")
        ingest_seconds = perf_counter() - t0
        if obs.current().enabled:
            obs.observe("stage.seconds", ingest_seconds)
        statuses.append(
            StageStatus("ingest", ingest_status, ingest_seconds, ingest_fp)
        )

        artifacts = PipelineArtifacts(
            trace=trace,
            trace_hash=trace_hash,
            service_map=None,  # set below
            corpus=None,
            active=None,
            vocab=None,
            statuses=statuses,
        )
        if last == 0:
            return artifacts

        # -- service-map ---------------------------------------------------
        custom_map = isinstance(config.service, ServiceMap)

        def compute_service_map():
            if custom_map:
                return config.service.to_spec()
            return config.resolve_service_map(trace).to_spec()

        if custom_map and config.service.to_spec() is None:
            # Custom, non-serialisable map: run uncached.
            t0 = perf_counter()
            with obs.span("stage.service-map") as sp:
                service_map = config.service
                sm_hash = stable_hash(
                    ["custom", type(service_map).__qualname__, list(service_map.names)]
                )
                sp.set(status="uncached")
            statuses.append(
                StageStatus("service-map", "uncached", perf_counter() - t0, "-")
            )
        else:
            spec, sm_hash = self._run_stage(
                "service-map",
                config.stage_fields("service-map"),
                {"ingest": trace_hash},
                SERVICE_MAP_CODEC,
                compute_service_map,
                statuses,
            )
            service_map = service_map_from_spec(spec)
        artifacts.service_map = service_map
        if last == 1:
            return artifacts

        # -- corpus (unfiltered; activity filter applied at vocab) ---------
        t_origin = trace.start_time if len(trace) else 0.0
        artifacts.t_origin = t_origin

        def compute_corpus():
            if config.shard_size > 0:
                return build_corpus_sharded(
                    trace,
                    service_map,
                    delta_t=config.delta_t,
                    shard_size=config.shard_size,
                    t_origin=t_origin,
                )
            builder = CorpusBuilder(service_map, delta_t=config.delta_t)
            return builder.build(trace, keep_senders=None, t_start=t_origin)

        corpus, corpus_hash = self._run_stage(
            "corpus",
            config.stage_fields("corpus"),
            {"ingest": trace_hash, "service-map": sm_hash},
            self._codec_for(CORPUS_CODEC, CORPUS_RAW_CODEC),
            compute_corpus,
            statuses,
        )
        artifacts.corpus = corpus
        if last == 2:
            return artifacts

        # -- vocab (activity filter as a vocabulary restriction) -----------
        def compute_vocab():
            active = trace.active_senders(config.min_packets)
            if config.shard_size > 0:
                vocab = build_vocab_streaming(
                    [sentence.tokens for sentence in corpus],
                    chunk_tokens=max(config.shard_size, 1024),
                )
            else:
                vocab = Vocabulary.build(
                    [sentence.tokens for sentence in corpus], min_count=1
                )
            return vocab.restricted_to(active), active

        (vocab, active), vocab_hash = self._run_stage(
            "vocab",
            config.stage_fields("vocab"),
            {"ingest": trace_hash, "corpus": corpus_hash},
            VOCAB_CODEC,
            compute_vocab,
            statuses,
        )
        artifacts.vocab = vocab
        artifacts.active = active
        if last == 3:
            return artifacts

        # -- train ---------------------------------------------------------
        def compute_embedding():
            model = Word2Vec(
                vector_size=config.vector_size,
                context=config.context,
                negative=config.negative,
                epochs=config.epochs,
                seed=config.seed,
                workers=config.workers,
                pool_backend=config.pool_backend,
                progress=self.progress,
            )
            return model.fit(
                [sentence.tokens for sentence in corpus],
                vocab=vocab,
                init=warm_init,
            )

        train_inputs = None
        if warm_init is not None:
            train_inputs = {"warm_init": KEYEDVECTORS_CODEC.content_hash(warm_init)}
        embedding, train_hash = self._run_stage(
            "train",
            config.stage_fields("train"),
            {"corpus": corpus_hash, "vocab": vocab_hash},
            self._codec_for(KEYEDVECTORS_CODEC, KEYEDVECTORS_RAW_CODEC),
            compute_embedding,
            statuses,
            inputs=train_inputs,
        )
        artifacts.embedding = embedding
        if last == 4:
            return artifacts

        # -- knn-index -----------------------------------------------------
        def compute_graph():
            return build_knn_graph(
                embedding.vectors,
                k_prime=config.k_prime,
                workers=config.workers,
                spec=config.ann_spec(),
            )

        graph, _ = self._run_stage(
            "knn-index",
            config.stage_fields("knn-index"),
            {"train": train_hash},
            KNN_GRAPH_CODEC,
            compute_graph,
            statuses,
        )
        artifacts.graph = graph
        return artifacts
