"""DarkVec configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.health import HealthPolicy
from repro.services.auto import AutoServiceMap
from repro.services.base import ServiceMap
from repro.services.domain import DomainServiceMap
from repro.services.single import SingleServiceMap
from repro.trace.packet import Trace

#: The paper's default parameters (Section 6.2): domain-knowledge
#: services, dT = 1 hour, c = 25, V = 50, 10 epochs, k = 7.
_SERVICE_CHOICES = ("single", "auto", "domain")

#: Config fields each pipeline stage reads, used to build stage
#: fingerprints: flipping a field re-runs exactly the stages that list
#: it (plus their downstream consumers, via upstream artifact hashes).
STAGE_CONFIG_FIELDS: dict[str, tuple[str, ...]] = {
    "ingest": (),
    "service-map": ("service", "auto_top_n"),
    "corpus": ("delta_t", "shard_size"),
    "vocab": ("min_packets", "shard_size"),
    "train": (
        "vector_size",
        "context",
        "negative",
        "epochs",
        "seed",
        "workers",
        "pool_backend",
    ),
    "knn-index": (
        "k_prime",
        "ann_backend",
        "ann_nlist",
        "ann_nprobe",
        "ann_pq_m",
        "ann_pq_bits",
        "ann_hnsw_m",
        "ann_hnsw_ef_build",
        "ann_hnsw_ef_search",
    ),
    "ann-index": (
        "ann_backend",
        "ann_nlist",
        "ann_nprobe",
        "ann_pq_m",
        "ann_pq_bits",
        "ann_hnsw_m",
        "ann_hnsw_ef_build",
        "ann_hnsw_ef_search",
        "seed",
    ),
}

_POOL_BACKENDS = ("thread", "process")


@dataclass
class DarkVecConfig:
    """All knobs of the DarkVec pipeline.

    Attributes:
        service: ``"single"``, ``"auto"``, ``"domain"``, or a custom
            :class:`~repro.services.base.ServiceMap` instance.
        auto_top_n: number of per-port services for ``"auto"``.
        delta_t: sentence window dT in seconds.
        min_packets: activity filter threshold (paper: 10).
        vector_size: embedding dimension V.
        context: one-sided context window c.
        negative: negative samples per positive pair.
        epochs: training epochs.
        seed: randomness seed (model init, window shrink, negatives).
        workers: parallelism for training, evaluation, and clustering.
            ``1`` (default) is the bit-reproducible sequential path,
            ``0`` uses all cores; any other value routes training
            through the sharded parallel engine (statistically
            equivalent embeddings, identical k-NN/graph results).
        pool_backend: how :class:`~repro.parallel.WorkerPool` fans out
            when ``workers != 1``: ``"thread"`` (default, shared
            address space) or ``"process"`` (fork-based workers over
            ``multiprocessing.shared_memory``, escaping the GIL).
            ``workers=1`` is the same sequential reference under both.
        shard_size: streaming-shard granularity (distinct senders per
            shard) for the corpus and vocab stages.  ``0`` (default)
            builds in one pass; any positive value streams
            shard-by-shard with a bounded working set and produces a
            bit-identical corpus and vocabulary.
        k_prime: neighbours per vertex of the k'-NN clustering graph
            (the default for :meth:`~repro.core.pipeline.DarkVec.cluster`
            and the knn-index stage; paper: 3).
        ann_backend: neighbour-search backend for every k-NN consumer
            (LOO evaluation, clustering graph, churn, extension):
            ``"exact"`` (default, bit-identical brute force),
            ``"ivf"`` (inverted-file approximate search, see
            :mod:`repro.ann.ivf`), or ``"ivfpq"`` (product-quantized
            inverted file with exact shortlist rescoring, see
            :mod:`repro.ann.ivfpq`).
        ann_nlist: IVF coarse-quantizer centroids; 0 picks
            ``sqrt(N)`` automatically at build time.
        ann_nprobe: inverted lists probed per IVF query (the
            speed/recall knob).
        ann_pq_m: product-quantizer subspaces for ``"ivfpq"``; 0
            (default) picks ``min(16, max(1, dim // 4))`` at build.
        ann_pq_bits: bits per PQ code for ``"ivfpq"`` (codebook size
            ``2**bits`` per subspace, 1..8).
        ann_hnsw_m: HNSW graph degree for ``"hnsw"`` — links kept per
            node on the upper layers (layer 0 keeps ``2 * m``).
        ann_hnsw_ef_build: construction beam width for ``"hnsw"``;
            wider beams find better link candidates at build time.
        ann_hnsw_ef_search: query beam width for ``"hnsw"`` (the
            speed/recall knob, IVF's ``ann_nprobe`` analogue).
        ann_recall_sample: queries per search that are exactly
            re-scored to measure ``ann.recall_at_k``; 0 disables the
            audit.  Observation only — it never changes results, so it
            does not enter stage fingerprints.
        window_days: rolling training window for incremental updates —
            :meth:`~repro.core.pipeline.DarkVec.update` evicts packets
            (at dT-window granularity) older than this many days before
            the newest packet.  Fig. 6 studies 1..30 days.
        update_epochs: training epochs for warm refits in ``update``;
            warm-started vectors converge in far fewer epochs than a
            cold start needs.
        update_alpha: starting learning rate for warm refits.  The
            cold-start default (0.025) would push already-converged
            vectors back through the large-gradient regime and lose
            the prior structure; a reduced fine-tuning rate keeps the
            warm model within noise of a full cold retrain.
        cache_dir: artifact-store directory.  ``None`` (the default)
            disables caching and keeps ``fit`` fully in memory.
        use_mmap: store large-matrix artifacts (corpus, embedding,
            ANN index) in the raw mmap-able container instead of
            ``.npz``, so cache loads return page-backed memmap views
            with bounded RSS.  Content hashes — and therefore stage
            fingerprints — are container-independent, but the on-disk
            payload suffix differs, so flipping this recomputes
            whatever is not already stored in the chosen container.
        health: drift/quality monitor thresholds and the default
            gating mode for :meth:`~repro.core.pipeline.DarkVec.update`
            (see :class:`~repro.obs.health.HealthPolicy`).  Accepts a
            plain dict (e.g. from a deserialised state file).
    """

    service: str | ServiceMap = "domain"
    auto_top_n: int = 10
    delta_t: float = 3600.0
    min_packets: int = 10
    vector_size: int = 50
    context: int = 25
    negative: int = 5
    epochs: int = 10
    seed: int = 1
    workers: int = 1
    pool_backend: str = "thread"
    shard_size: int = 0
    use_mmap: bool = False
    k_prime: int = 3
    ann_backend: str = "exact"
    ann_nlist: int = 0
    ann_nprobe: int = 8
    ann_pq_m: int = 0
    ann_pq_bits: int = 8
    ann_hnsw_m: int = 16
    ann_hnsw_ef_build: int = 80
    ann_hnsw_ef_search: int = 8
    ann_recall_sample: int = 32
    window_days: float = 30.0
    update_epochs: int = 3
    update_alpha: float = 0.01
    cache_dir: str | Path | None = None
    health: HealthPolicy = field(default_factory=HealthPolicy)

    def __post_init__(self) -> None:
        if isinstance(self.health, dict):
            self.health = HealthPolicy(**self.health)
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means all cores)")
        if self.pool_backend not in _POOL_BACKENDS:
            raise ValueError(
                f"pool_backend must be one of {_POOL_BACKENDS}, "
                f"got {self.pool_backend!r}"
            )
        if self.shard_size < 0:
            raise ValueError("shard_size must be >= 0 (0 disables sharding)")
        if isinstance(self.service, str) and self.service not in _SERVICE_CHOICES:
            raise ValueError(
                f"service must be one of {_SERVICE_CHOICES} or a ServiceMap, "
                f"got {self.service!r}"
            )
        if self.min_packets < 1:
            raise ValueError("min_packets must be positive")
        if self.auto_top_n < 1:
            raise ValueError("auto_top_n must be positive")
        if self.k_prime < 1:
            raise ValueError("k_prime must be positive")
        # AnnSpec re-validates backend/nlist/nprobe/recall_sample, so a
        # bad ANN knob fails at construction, not at first search.
        self.ann_spec()
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")
        if self.update_epochs < 1:
            raise ValueError("update_epochs must be positive")
        if self.update_alpha <= 0:
            raise ValueError("update_alpha must be positive")

    def ann_spec(self):
        """The :class:`~repro.ann.base.AnnSpec` these knobs describe."""
        from repro.ann.base import AnnSpec

        return AnnSpec(
            backend=self.ann_backend,
            nlist=self.ann_nlist,
            nprobe=self.ann_nprobe,
            recall_sample=self.ann_recall_sample,
            seed=self.seed,
            pq_m=self.ann_pq_m,
            pq_bits=self.ann_pq_bits,
            hnsw_m=self.ann_hnsw_m,
            hnsw_ef_build=self.ann_hnsw_ef_build,
            hnsw_ef_search=self.ann_hnsw_ef_search,
        )

    def resolve_service_map(self, trace: Trace) -> ServiceMap:
        """Materialise the service map (auto services need the trace)."""
        if isinstance(self.service, ServiceMap):
            return self.service
        if self.service == "single":
            return SingleServiceMap()
        if self.service == "auto":
            return AutoServiceMap.from_trace(trace, n=self.auto_top_n)
        return DomainServiceMap()

    def stage_fields(self, stage: str, **overrides) -> dict[str, object]:
        """Fingerprintable values of the config fields ``stage`` reads.

        ``overrides`` substitute call-site values for config fields
        (e.g. a ``k_prime`` passed directly to ``cluster``).  The
        ``service`` field is translated to a stable key: the config
        string for built-in maps, or class name + service names for
        custom :class:`~repro.services.base.ServiceMap` instances.
        """
        fields = STAGE_CONFIG_FIELDS[stage]
        values: dict[str, object] = {}
        for name in fields:
            value = overrides.get(name, getattr(self, name))
            if name == "service" and isinstance(value, ServiceMap):
                value = ["custom", type(value).__qualname__, list(value.names)]
            values[name] = value
        unknown = set(overrides) - set(fields)
        if unknown:
            raise ValueError(f"stage {stage!r} does not read fields {unknown}")
        return values
