"""DarkVec configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.services.auto import AutoServiceMap
from repro.services.base import ServiceMap
from repro.services.domain import DomainServiceMap
from repro.services.single import SingleServiceMap
from repro.trace.packet import Trace

#: The paper's default parameters (Section 6.2): domain-knowledge
#: services, dT = 1 hour, c = 25, V = 50, 10 epochs, k = 7.
_SERVICE_CHOICES = ("single", "auto", "domain")


@dataclass
class DarkVecConfig:
    """All knobs of the DarkVec pipeline.

    Attributes:
        service: ``"single"``, ``"auto"``, ``"domain"``, or a custom
            :class:`~repro.services.base.ServiceMap` instance.
        auto_top_n: number of per-port services for ``"auto"``.
        delta_t: sentence window dT in seconds.
        min_packets: activity filter threshold (paper: 10).
        vector_size: embedding dimension V.
        context: one-sided context window c.
        negative: negative samples per positive pair.
        epochs: training epochs.
        seed: randomness seed (model init, window shrink, negatives).
        workers: parallelism for training, evaluation, and clustering.
            ``1`` (default) is the bit-reproducible sequential path,
            ``0`` uses all cores; any other value routes training
            through the sharded parallel engine (statistically
            equivalent embeddings, identical k-NN/graph results).
    """

    service: str | ServiceMap = "domain"
    auto_top_n: int = 10
    delta_t: float = 3600.0
    min_packets: int = 10
    vector_size: int = 50
    context: int = 25
    negative: int = 5
    epochs: int = 10
    seed: int = 1
    workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means all cores)")
        if isinstance(self.service, str) and self.service not in _SERVICE_CHOICES:
            raise ValueError(
                f"service must be one of {_SERVICE_CHOICES} or a ServiceMap, "
                f"got {self.service!r}"
            )
        if self.min_packets < 1:
            raise ValueError("min_packets must be positive")
        if self.auto_top_n < 1:
            raise ValueError("auto_top_n must be positive")

    def resolve_service_map(self, trace: Trace) -> ServiceMap:
        """Materialise the service map (auto services need the trace)."""
        if isinstance(self.service, ServiceMap):
            return self.service
        if self.service == "single":
            return SingleServiceMap()
        if self.service == "auto":
            return AutoServiceMap.from_trace(trace, n=self.auto_top_n)
        return DomainServiceMap()
