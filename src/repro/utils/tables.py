"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Numeric cells are right-aligned; everything else is left-aligned.
    """
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(header), *(len(row[col]) for row in str_rows)) if str_rows else len(header)
        for col, header in enumerate(headers)
    ]
    numeric = [
        bool(str_rows) and all(_is_numeric(row[col]) for row in str_rows)
        for col in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if numeric[col]:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
