"""ASCII rendering of the paper's figures.

The benchmark harness has no plotting backend, so figures are rendered as
text: line charts for ECDF/series panels and dot rasters for the
sender-activity figures (Figures 1b, 9, 12-15).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def line_chart(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 72,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a single series as an ASCII line chart."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size == 0 or x_arr.size != y_arr.size:
        raise ValueError("x and y must be non-empty and of equal length")
    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = float(x_arr.min()), float(x_arr.max())
    y_min, y_max = float(y_arr.min()), float(y_arr.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    for xi, yi in zip(x_arr, y_arr):
        col = int((xi - x_min) / x_span * (width - 1))
        row = height - 1 - int((yi - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_min:.4g}, {y_max:.4g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_min:.4g}, {x_max:.4g}]")
    return "\n".join(lines)


def sparkline(
    values: Sequence[float],
    width: int | None = None,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render a series as a one-line bar sparkline (``▁▂▃▄▅▆▇█``).

    Used by ``repro health`` to show drift-monitor history inline.
    ``width`` caps the number of cells (the series is mean-pooled down
    to fit); ``lo``/``hi`` pin the scale (default: the series range).
    Non-finite values render as spaces.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if width is not None and width > 0 and arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [
                arr[a:b][np.isfinite(arr[a:b])].mean()
                if np.isfinite(arr[a:b]).any()
                else np.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
    finite = arr[np.isfinite(arr)]
    lo = float(finite.min()) if lo is None and finite.size else (lo or 0.0)
    hi = float(finite.max()) if hi is None and finite.size else (hi or 1.0)
    span = hi - lo or 1.0
    ticks = "▁▂▃▄▅▆▇█"
    cells = []
    for value in arr:
        if not np.isfinite(value):
            cells.append(" ")
            continue
        level = int((value - lo) / span * (len(ticks) - 1) + 0.5)
        cells.append(ticks[min(max(level, 0), len(ticks) - 1)])
    return "".join(cells)


def raster(
    matrix: np.ndarray,
    title: str | None = None,
    max_rows: int = 40,
    max_cols: int = 72,
) -> str:
    """Render a boolean activity matrix (rows = senders, cols = time bins).

    This is the textual analogue of the scatter "activity pattern"
    figures: a ``#`` marks a (sender, time-bin) cell with activity.
    Large matrices are downsampled by OR-pooling.
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(f"raster expects a 2-D matrix, got shape {matrix.shape}")
    pooled = _or_pool(matrix, max_rows, max_cols)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"({matrix.shape[0]} senders x {matrix.shape[1]} time bins)")
    lines.extend("|" + "".join("#" if cell else "." for cell in row) for row in pooled)
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str | None = None,
) -> str:
    """Render a small numeric matrix as a shaded ASCII heatmap."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (len(row_labels), len(col_labels)):
        raise ValueError("matrix shape must match label lengths")
    shades = " .:-=+*#%@"
    peak = matrix.max() if matrix.size and matrix.max() > 0 else 1.0
    label_width = max((len(label) for label in row_labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, row in zip(row_labels, matrix):
        cells = "".join(
            shades[min(int(value / peak * (len(shades) - 1)), len(shades) - 1)]
            for value in row
        )
        lines.append(f"{label.rjust(label_width)} |{cells}|")
    footer = " " * label_width + "  " + " ".join(col_labels)
    lines.append(footer)
    return "\n".join(lines)


def _or_pool(matrix: np.ndarray, max_rows: int, max_cols: int) -> np.ndarray:
    rows, cols = matrix.shape
    row_bins = min(rows, max_rows)
    col_bins = min(cols, max_cols)
    if row_bins == 0 or col_bins == 0:
        return np.zeros((0, 0), dtype=bool)
    row_edges = np.linspace(0, rows, row_bins + 1).astype(int)
    col_edges = np.linspace(0, cols, col_bins + 1).astype(int)
    pooled = np.zeros((row_bins, col_bins), dtype=bool)
    for i in range(row_bins):
        block = matrix[row_edges[i] : row_edges[i + 1]]
        if block.size == 0:
            continue
        col_any = block.any(axis=0)
        for j in range(col_bins):
            pooled[i, j] = col_any[col_edges[j] : col_edges[j + 1]].any()
    return pooled
