"""Empirical cumulative distribution functions.

Used throughout the analysis module to regenerate the ECDF panels of the
paper (Figures 1a and 2a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a sample of scalar values.

    Attributes:
        values: sorted, unique sample values.
        probabilities: ``P(X <= values[i])`` for each value.
    """

    values: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != len(self.probabilities):
            raise ValueError("values and probabilities must align")

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """Evaluate ``P(X <= x)``."""
        if len(self.values) == 0:
            raise ValueError("empty ECDF")
        idx = int(np.searchsorted(self.values, x, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self.probabilities[idx])

    def quantile(self, q: float) -> float:
        """Smallest sample value ``v`` with ``P(X <= v) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if len(self.values) == 0:
            raise ValueError("empty ECDF")
        idx = int(np.searchsorted(self.probabilities, q, side="left"))
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])


def ecdf(sample: np.ndarray) -> Ecdf:
    """Build the :class:`Ecdf` of a one-dimensional sample."""
    sample = np.asarray(sample)
    if sample.ndim != 1:
        raise ValueError(f"sample must be one-dimensional, got shape {sample.shape}")
    if sample.size == 0:
        return Ecdf(values=np.empty(0), probabilities=np.empty(0))
    values, counts = np.unique(sample, return_counts=True)
    probabilities = np.cumsum(counts) / sample.size
    return Ecdf(values=values.astype(float), probabilities=probabilities)
