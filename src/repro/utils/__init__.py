"""Shared utilities: seeded RNG, ECDF, timers, ASCII rendering."""

from repro.utils.ecdf import Ecdf, ecdf
from repro.utils.rng import child_rng, make_rng
from repro.utils.tables import format_table
from repro.utils.timer import Timer

__all__ = [
    "Ecdf",
    "Timer",
    "child_rng",
    "ecdf",
    "format_table",
    "make_rng",
]
