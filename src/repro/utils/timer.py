"""Wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        >>> t.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entering")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
