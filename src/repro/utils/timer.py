"""Wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Re-entrant context manager measuring elapsed wall-clock seconds.

    ``elapsed`` holds the duration of the most recently *completed*
    ``with`` block; blocks may nest (each exit pops its own entry).
    :meth:`lap` reads split times inside a block without stopping it.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        ...     first_lap = t.lap()
        >>> t.elapsed >= first_lap >= 0.0
        True
    """

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._lap_start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        now = time.perf_counter()
        self._starts.append(now)
        self._lap_start = now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Record the innermost block's duration.

        Exiting a timer that was never entered is a programming error
        and raises ``RuntimeError`` — but only when no exception is
        already propagating, so a broken ``finally``/``__exit__`` chain
        never masks the original exception with the timer's own.
        """
        if not self._starts:
            if exc_type is None:
                raise RuntimeError("Timer exited without entering")
            return
        now = time.perf_counter()
        self.elapsed = now - self._starts.pop()
        self._lap_start = now if self._starts else None

    def lap(self) -> float:
        """Seconds since the last :meth:`lap` (or the block entry).

        Resets the lap origin, so consecutive calls return consecutive
        split durations.  Only valid inside a ``with`` block.
        """
        if self._lap_start is None:
            raise RuntimeError("lap() is only valid inside a with-block")
        now = time.perf_counter()
        lap = now - self._lap_start
        self._lap_start = now
        return lap
