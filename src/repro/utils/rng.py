"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  These helpers normalise that choice and
derive independent child generators so that adding a new consumer of
randomness never perturbs the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, or an
    existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and ``keys``.

    The child stream is a pure function of the parent seed sequence and
    the keys, so two calls with the same arguments yield identical
    streams while different keys yield statistically independent ones.
    """
    material = [_key_to_int(key) for key in keys]
    spawn_seed = rng.integers(0, 2**63 - 1)
    return np.random.default_rng([spawn_seed, *material])


def _key_to_int(key: int | str) -> int:
    if isinstance(key, int):
        return key
    # Stable, platform-independent string hash (FNV-1a, 64 bit).
    acc = 0xCBF29CE484222325
    for byte in key.encode("utf-8"):
        acc = ((acc ^ byte) * 0x100000001B3) % 2**64
    return acc
