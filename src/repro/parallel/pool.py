"""Worker-pool execution primitives.

:class:`WorkerPool` wraps :class:`concurrent.futures.ThreadPoolExecutor`
with the semantics the pipeline needs: the ``workers`` knob expresses
the *requested* parallelism (``0`` = all cores) while the actual thread
count is capped at the machine's core count — the hot paths are numpy
kernels that release the GIL, so threads beyond physical cores only add
scheduling overhead.  A single-threaded pool runs tasks inline at
submit time; this keeps the task structure (and therefore work
sharding) identical across machines while skipping thread overhead
entirely, and makes single-core runs fully deterministic.

Pools also support a ``"process"`` backend for ``map``: tasks fan out
to fork-based workers (``multiprocessing``), escaping the GIL for
Python-heavy work.  Fork inheritance stands in for pickling — the task
function and items are published in a module global before the fork,
and workers receive only indices — so arbitrary closures work.  The
trade-off is that workers see copy-on-write *copies* of the parent's
memory: task functions must **return** their results (mutating parent
arrays in place does not propagate).  Writable cross-process state
lives in :mod:`repro.parallel.shm` shared-memory arrays.

When a telemetry session is active (:mod:`repro.obs`), every task runs
inside a task scope: its metric writes land in a task-local registry
whose snapshot is merged back into the parent when the task finishes —
process-backend tasks ship their snapshot home alongside the result —
so ``workers > 1`` runs aggregate counters exactly like single-worker
runs.  With no session active the wrapping is skipped entirely.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable

from repro.obs import recorder
from repro.obs.recorder import wrap_task

#: Valid WorkerPool backends.
POOL_BACKENDS = ("thread", "process")

#: Session-default backend used when a pool is built without an
#: explicit one; see :func:`pool_backend`.
_DEFAULT_BACKEND = "thread"

#: Fork-published ``(fn, items)`` for the in-flight process map, plus
#: the lock serialising process maps (the global is per-fork state).
_FORK_STATE: tuple[Callable[[Any], Any], list] | None = None
_FORK_LOCK = threading.Lock()


def resolve_workers(workers: int) -> int:
    """Normalise a ``workers`` knob: ``<= 0`` means all available cores."""
    if workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


def fork_available() -> bool:
    """Whether fork-based process pools work on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_backend() -> str:
    """The session-default pool backend (``"thread"`` unless scoped)."""
    return _DEFAULT_BACKEND


@contextmanager
def pool_backend(name: str):
    """Scope the default backend of pools built without an explicit one.

    The pipeline wraps ``fit``/``update``/``evaluate``/``cluster`` in
    this scope so one config knob reaches every nested WorkerPool
    without threading a parameter through each call site.
    """
    global _DEFAULT_BACKEND
    if name not in POOL_BACKENDS:
        raise ValueError(f"pool backend must be one of {POOL_BACKENDS}, got {name!r}")
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    try:
        yield
    finally:
        _DEFAULT_BACKEND = previous


def _fork_map_entry(index: int):
    """Run one fork-published task; executed inside a worker process."""
    assert _FORK_STATE is not None
    fn, items = _FORK_STATE
    rec = recorder.current()
    if not rec.enabled:
        return fn(items[index]), None
    with rec.task_scope() as shard:
        result = fn(items[index])
        snapshot = shard.snapshot()
    return result, snapshot


class WorkerPool:
    """Thread pool with an inline fast path for single-threaded runs.

    Attributes:
        workers: requested logical parallelism (after resolving ``0``).
        threads: actual worker count, capped at the core count.
        backend: ``"thread"`` or ``"process"`` (``map`` fan-out only;
            ``submit`` always uses threads).  ``None`` at construction
            picks the scoped :func:`default_backend`.
    """

    def __init__(self, workers: int = 1, backend: str | None = None) -> None:
        self.workers = resolve_workers(workers)
        self.threads = max(1, min(self.workers, os.cpu_count() or 1))
        if backend is None:
            backend = default_backend()
        if backend not in POOL_BACKENDS:
            raise ValueError(
                f"pool backend must be one of {POOL_BACKENDS}, got {backend!r}"
            )
        if backend == "process" and not fork_available():
            backend = "thread"
        self.backend = backend
        self._executor: ThreadPoolExecutor | None = None

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; runs inline when 1-threaded.

        Futures need a shared address space to be awaited incrementally,
        so ``submit`` always uses the thread executor regardless of
        backend; only ``map`` fans out across processes.
        """
        fn = wrap_task(fn)
        if self.threads == 1:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # mirror executor behaviour
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item concurrently, preserving order.

        The process backend fans out ``workers`` processes (not the
        core-capped ``threads``): forked workers escape the GIL, so
        requested parallelism is honoured even where the thread pool
        would collapse to the core count.
        """
        items = list(items)
        if self.backend == "process" and self.workers > 1 and len(items) > 1:
            return self._process_map(fn, items)
        if self.threads == 1 or len(items) <= 1:
            fn = wrap_task(fn)
            return [fn(item) for item in items]
        return list(self._ensure_executor().map(wrap_task(fn), items))

    def _process_map(self, fn: Callable[[Any], Any], items: list) -> list:
        """Fan ``fn`` over ``items`` in fork-based worker processes."""
        global _FORK_STATE
        rec = recorder.current()
        ctx = multiprocessing.get_context("fork")
        stream = None
        initializer, initargs = None, ()
        if rec.enabled and getattr(rec, "worker_stream_interval", None):
            # A live sink is attached: workers heartbeat in-flight
            # snapshots + RSS through a queue (see repro.obs.live).
            from repro.obs.live import WorkerStream

            stream = WorkerStream.maybe(rec, ctx)
        if stream is not None:
            initializer, initargs = stream.initargs
            stream.start()
        with _FORK_LOCK:
            _FORK_STATE = (fn, items)
            try:
                with ctx.Pool(
                    processes=min(self.workers, len(items)),
                    initializer=initializer,
                    initargs=initargs,
                ) as pool:
                    outcomes = pool.map(_fork_map_entry, range(len(items)))
            finally:
                _FORK_STATE = None
                if stream is not None:
                    stream.stop()
        results = []
        for result, snapshot in outcomes:
            if snapshot is not None and rec.enabled:
                rec.merge_snapshot(snapshot)
            results.append(result)
        return results

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry; returns the pool itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit; shuts the executor down."""
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.threads)
        return self._executor
