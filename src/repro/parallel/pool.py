"""Worker-pool execution primitives.

:class:`WorkerPool` wraps :class:`concurrent.futures.ThreadPoolExecutor`
with the semantics the pipeline needs: the ``workers`` knob expresses
the *requested* parallelism (``0`` = all cores) while the actual thread
count is capped at the machine's core count — the hot paths are numpy
kernels that release the GIL, so threads beyond physical cores only add
scheduling overhead.  A single-threaded pool runs tasks inline at
submit time; this keeps the task structure (and therefore work
sharding) identical across machines while skipping thread overhead
entirely, and makes single-core runs fully deterministic.

When a telemetry session is active (:mod:`repro.obs`), every task runs
inside a task scope: its metric writes land in a task-local registry
whose snapshot is merged back into the parent when the task finishes,
so ``workers > 1`` runs aggregate counters exactly like single-worker
runs.  With no session active the wrapping is skipped entirely.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable

from repro.obs.recorder import wrap_task


def resolve_workers(workers: int) -> int:
    """Normalise a ``workers`` knob: ``<= 0`` means all available cores."""
    if workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


class WorkerPool:
    """Thread pool with an inline fast path for single-threaded runs.

    Attributes:
        workers: requested logical parallelism (after resolving ``0``).
        threads: actual thread count, capped at the core count.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = resolve_workers(workers)
        self.threads = max(1, min(self.workers, os.cpu_count() or 1))
        self._executor: ThreadPoolExecutor | None = None

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; runs inline when 1-threaded."""
        fn = wrap_task(fn)
        if self.threads == 1:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # mirror executor behaviour
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item concurrently, preserving order."""
        items = list(items)
        fn = wrap_task(fn)
        if self.threads == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_executor().map(fn, items))

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry; returns the pool itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit; shuts the executor down."""
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.threads)
        return self._executor
