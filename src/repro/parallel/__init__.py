"""Parallel execution engine for the DarkVec pipeline.

This subsystem provides the machinery behind every ``workers`` knob in
the library:

* :mod:`repro.parallel.pool` — a :class:`~repro.parallel.pool.WorkerPool`
  thread-pool wrapper (numpy kernels release the GIL, so threads give
  real concurrency on the BLAS-heavy hot paths).
* :mod:`repro.parallel.sgd` — vectorized SGNS kernels (sigmoid lookup
  table, sparse-matmul scatter-add, pair deduplication) used by the
  sharded trainer.
* :mod:`repro.parallel.trainer` — the Hogwild-style
  :class:`~repro.parallel.trainer.ShardedTrainer` that
  :class:`~repro.w2v.model.Word2Vec` dispatches to when ``workers != 1``.

``workers=1`` everywhere means "the exact sequential reference path";
``workers=0`` means "use all available cores".
"""

from repro.parallel.pool import (
    POOL_BACKENDS,
    WorkerPool,
    default_backend,
    fork_available,
    pool_backend,
    resolve_workers,
)
from repro.parallel.sgd import dedup_pairs, scaled_scatter_add, sigmoid_table
from repro.parallel.shm import SharedArray
from repro.parallel.trainer import ShardedTrainer

__all__ = [
    "POOL_BACKENDS",
    "SharedArray",
    "ShardedTrainer",
    "WorkerPool",
    "dedup_pairs",
    "default_backend",
    "fork_available",
    "pool_backend",
    "resolve_workers",
    "scaled_scatter_add",
    "sigmoid_table",
]
