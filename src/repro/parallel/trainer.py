"""Hogwild-style sharded SGNS trainer (the ``workers != 1`` fit path).

Each epoch the sentence permutation is cut into ``workers ×
shards_per_worker`` shards.  Per shard, a *generation* task gathers the
shard's sentences from the flattened corpus, applies subsampling, emits
skip-gram pairs (:func:`~repro.w2v.skipgram.skipgram_pairs_flat`),
deduplicates them and shuffles the uniques; an *SGD* task then replays
the deduplicated stream through :func:`~repro.parallel.sgd.sgd_step_fast`.
Generation for shard ``i+1`` is prefetched while SGD runs on shard
``i``, and on multi-core machines the SGD tasks of different shards run
concurrently, updating the shared ``syn0``/``syn1`` matrices lock-free
(Hogwild); only the learning-rate bookkeeping takes a lock.

Determinism: with one thread (one core, or ``workers=1`` requested at a
call site that still routes here) the schedule is sequential and runs
are bit-reproducible for a fixed seed.  With several threads the
lock-free races make individual runs differ, but the embeddings are
statistically equivalent — the LOO accuracy criterion the paper uses is
unaffected (see ``benchmarks/bench_perf_engine.py``).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.obs import recorder as obs_recorder
from repro.obs.progress import epoch_event
from repro.parallel.pool import (
    WorkerPool,
    default_backend,
    fork_available,
    resolve_workers,
)
from repro.parallel.sgd import dedup_pairs, sgd_step_fast
from repro.parallel.shm import SharedArray
from repro.w2v.mathutils import cap_row_norms
from repro.w2v.negative import NegativeSampler
from repro.w2v.skipgram import skipgram_pairs_flat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.w2v.model import Word2Vec

# Distinct stream tags so generation and SGD randomness never collide.
_GEN_STREAM = 11
_SGD_STREAM = 13

#: Fork-published trainer for the in-flight process-backend fit, plus
#: the lock serialising process fits (the global is per-fork state).
_PROC_TRAINER: "ShardedTrainer | None" = None
_PROC_LOCK = threading.Lock()


def _proc_shard_entry(task: tuple) -> tuple:
    """Generate + SGD-train one shard; runs inside a worker process.

    Returns ``(loss_sum, loss_pairs, metrics_snapshot)``.  The worker's
    weight writes land directly in the fork-inherited shared-memory
    syn0/syn1 (Hogwild across processes); everything else — loss terms
    and the task-local metrics shard — must travel home by value, since
    ordinary memory is copy-on-write after fork.
    """
    epoch, shard, sel = task
    trainer = _PROC_TRAINER
    assert trainer is not None
    rec = obs_recorder.current()

    def run() -> tuple[float, int] | None:
        payload = trainer._generate(epoch, shard, sel)
        if payload is None:
            return None
        return trainer._train_shard(epoch, shard, payload)

    if rec.enabled:
        with rec.task_scope() as shard_registry:
            result = run()
            snapshot = shard_registry.snapshot()
    else:
        result = run()
        snapshot = None
    if result is None:
        return 0.0, 0, snapshot
    return result[0], result[1], snapshot


class ShardedTrainer:
    """Parallel trainer bound to one :class:`~repro.w2v.model.Word2Vec`.

    The trainer owns no hyper-parameters of its own beyond the shard
    layout; everything else (window, negatives, learning-rate schedule,
    norm capping) is read from the model so the two paths cannot drift.

    Attributes:
        shards_per_worker: shards per logical worker and epoch; more
            than one keeps stragglers from idling the pool.
        shared_negatives: negative-sample group size.  Larger than the
            sequential default: the deduplicated + shuffled pair stream
            decorrelates the groups, which is what makes wide sharing
            safe (and fast) in the first place.
    """

    shards_per_worker: int = 2
    shared_negatives: int = 64
    prefetch_margin: int = 1

    def __init__(self, model: "Word2Vec") -> None:
        self.model = model
        self.workers = resolve_workers(model.workers)
        self.n_shards = max(1, self.workers * self.shards_per_worker)
        self.shared_negatives = max(model.shared_negatives, self.shared_negatives)
        self._lock = threading.Lock()
        self._processed = 0
        self._loss_sum = 0.0
        self._loss_pairs = 0
        self._shared_processed = None

    @property
    def processed_pairs(self) -> int:
        """Raw (pre-dedup) skip-gram pairs trained so far."""
        return self._processed

    def _backend(self) -> str:
        """The pool backend this fit uses (model knob or scoped default)."""
        backend = getattr(self.model, "pool_backend", None) or default_backend()
        if backend == "process" and (self.workers == 1 or not fork_available()):
            backend = "thread"
        return backend

    # ------------------------------------------------------------------
    # Entry points (called by Word2Vec.fit / fit_pairs)
    # ------------------------------------------------------------------

    def train_corpus(
        self,
        encoded: list[np.ndarray],
        lengths: np.ndarray,
        syn0: np.ndarray,
        syn1: np.ndarray,
        sampler: NegativeSampler | None,
        keep_probs: np.ndarray | None,
        total_pairs: int,
        batch_pairs: int,
        rng: np.random.Generator,
    ) -> None:
        """Train ``syn0``/``syn1`` in place on an encoded corpus.

        ``rng`` drives only the cross-epoch sentence permutation (as in
        the sequential path); all per-shard randomness derives from
        ``(seed, stream, epoch, shard)`` so the work decomposition, not
        the thread schedule, defines the random streams.
        """
        self._begin(syn0, syn1, sampler, total_pairs, batch_pairs)
        flat = (
            np.concatenate(encoded) if encoded else np.empty(0, dtype=np.int64)
        )
        starts = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)

        def generate(epoch: int, shard: int, sel: np.ndarray):
            return self._generate_corpus_shard(
                flat, starts, lengths, keep_probs, epoch, shard, sel
            )

        self._train_epochs(len(encoded), generate, rng)

    def train_pair_stream(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        syn0: np.ndarray,
        syn1: np.ndarray,
        sampler: NegativeSampler | None,
        total_pairs: int,
        batch_pairs: int,
        rng: np.random.Generator,
    ) -> None:
        """Train on an explicit pair stream (the ``fit_pairs`` path).

        Generation here is just gather + dedup + shuffle of the shard's
        slice of the permuted stream; highly repetitive streams (IP2VEC
        emits five pairs per packet) compress massively under dedup.
        """
        self._begin(syn0, syn1, sampler, total_pairs, batch_pairs)

        def generate(epoch: int, shard: int, sel: np.ndarray):
            if len(sel) == 0:
                return None
            grng = self._shard_rng(_GEN_STREAM, epoch, shard)
            return self._dedup_and_shuffle(centers[sel], contexts[sel], grng)

        self._train_epochs(len(centers), generate, rng)

    # ------------------------------------------------------------------
    # Epoch / shard machinery
    # ------------------------------------------------------------------

    def _begin(
        self,
        syn0: np.ndarray,
        syn1: np.ndarray,
        sampler: NegativeSampler | None,
        total_pairs: int,
        batch_pairs: int,
    ) -> None:
        self._syn0 = syn0
        self._syn1 = syn1
        self._sampler = sampler
        self._total_pairs = total_pairs
        self._batch_pairs = batch_pairs
        self._n_vocab = len(syn0)
        self._processed = 0
        self._loss_sum = 0.0
        self._loss_pairs = 0
        self._shared_processed = None
        self._track_loss = self.model.progress is not None

    def _train_epochs(
        self,
        n_items: int,
        generate: Callable[[int, int, np.ndarray], tuple | None],
        rng: np.random.Generator,
    ) -> None:
        if n_items == 0:
            return
        if self._backend() == "process":
            self._train_epochs_process(n_items, generate, rng)
            return
        t_start = time.perf_counter()
        with WorkerPool(self.model.workers, backend="thread") as pool:
            for epoch in range(self.model.epochs):
                loss_sum0, loss_pairs0 = self._loss_sum, self._loss_pairs
                t_epoch = time.perf_counter()
                with obs.span("train.epoch", epoch=epoch):
                    order = rng.permutation(n_items)
                    shards = np.array_split(order, min(self.n_shards, n_items))
                    self._run_epoch(pool, epoch, shards, generate)
                obs.observe(
                    "train.epoch_seconds", time.perf_counter() - t_epoch
                )
                self._emit_progress(epoch, t_start, loss_sum0, loss_pairs0)

    def _train_epochs_process(
        self,
        n_items: int,
        generate: Callable[[int, int, np.ndarray], tuple | None],
        rng: np.random.Generator,
    ) -> None:
        """Epoch loop over fork-based worker processes.

        syn0/syn1 move into shared memory for the duration of the fit
        (so Hogwild writes from every process land in one buffer) and
        are copied back into the caller's arrays at the end.  The
        epoch/shard decomposition and all per-shard RNG streams are
        identical to the thread path — only the executor differs — so
        deterministic metric totals (pair counts, batch sizes) match
        across backends exactly.
        """
        global _PROC_TRAINER
        t_start = time.perf_counter()
        ctx = multiprocessing.get_context("fork")
        rec = obs_recorder.current()
        shared0 = SharedArray.copy_of(self._syn0)
        shared1 = SharedArray.copy_of(self._syn1)
        original0, original1 = self._syn0, self._syn1
        self._syn0, self._syn1 = shared0.array, shared1.array
        self._shared_processed = ctx.Value("q", 0)
        self._generate = generate
        stream = None
        initializer, initargs = None, ()
        if rec.enabled and getattr(rec, "worker_stream_interval", None):
            # A live sink is attached: workers heartbeat in-flight
            # snapshots + RSS through a queue (see repro.obs.live).
            from repro.obs.live import WorkerStream

            stream = WorkerStream.maybe(rec, ctx)
        if stream is not None:
            initializer, initargs = stream.initargs
            stream.start()
        try:
            with _PROC_LOCK:
                _PROC_TRAINER = self
                try:
                    # One fork per fit: workers inherit the trainer (and
                    # the shared mappings) once; tasks are small tuples.
                    with ctx.Pool(
                        processes=self.workers,
                        initializer=initializer,
                        initargs=initargs,
                    ) as procs:
                        for epoch in range(self.model.epochs):
                            loss_sum0 = self._loss_sum
                            loss_pairs0 = self._loss_pairs
                            t_epoch = time.perf_counter()
                            with obs.span("train.epoch", epoch=epoch):
                                order = rng.permutation(n_items)
                                shards = np.array_split(
                                    order, min(self.n_shards, n_items)
                                )
                                tasks = [
                                    (epoch, i, shard)
                                    for i, shard in enumerate(shards)
                                ]
                                for loss_sum, loss_pairs, snapshot in procs.imap(
                                    _proc_shard_entry, tasks
                                ):
                                    self._loss_sum += loss_sum
                                    self._loss_pairs += loss_pairs
                                    if snapshot is not None and rec.enabled:
                                        rec.merge_snapshot(snapshot)
                            obs.observe(
                                "train.epoch_seconds",
                                time.perf_counter() - t_epoch,
                            )
                            self._processed = int(self._shared_processed.value)
                            self._emit_progress(
                                epoch, t_start, loss_sum0, loss_pairs0
                            )
                finally:
                    _PROC_TRAINER = None
                    if stream is not None:
                        stream.stop()
            original0[...] = shared0.array
            original1[...] = shared1.array
        finally:
            self._syn0, self._syn1 = original0, original1
            self._shared_processed = None
            shared0.release()
            shared1.release()

    def _emit_progress(
        self, epoch: int, t_start: float, loss_sum0: float, loss_pairs0: int
    ) -> None:
        model = self.model
        if model.progress is None:
            return
        epoch_loss = self._loss_sum - loss_sum0
        epoch_pairs = self._loss_pairs - loss_pairs0
        model.progress(
            epoch_event(
                epoch,
                model.epochs,
                self._processed,
                self._total_pairs,
                time.perf_counter() - t_start,
                loss=epoch_loss / epoch_pairs if epoch_pairs else None,
            )
        )

    def _run_epoch(
        self,
        pool: WorkerPool,
        epoch: int,
        shards: list[np.ndarray],
        generate: Callable[[int, int, np.ndarray], tuple | None],
    ) -> None:
        """Pipelined pass over one epoch's shards.

        A bounded window of generation tasks runs ahead of the SGD
        tasks, so pair construction for shard ``i+1`` overlaps SGD on
        shard ``i`` while at most ``threads + prefetch_margin`` shards
        of pairs exist at once.
        """
        prefetch = pool.threads + self.prefetch_margin
        pending: deque = deque()
        sgd_futures = []
        next_shard = 0

        def submit_generation() -> None:
            nonlocal next_shard
            shard = next_shard
            pending.append(
                (shard, pool.submit(generate, epoch, shard, shards[shard]))
            )
            next_shard += 1

        while next_shard < len(shards) and len(pending) < prefetch:
            submit_generation()
        while pending:
            shard, future = pending.popleft()
            payload = future.result()
            if payload is not None:
                sgd_futures.append(
                    pool.submit(self._train_shard, epoch, shard, payload)
                )
            if next_shard < len(shards):
                submit_generation()
        for future in sgd_futures:
            loss_sum, loss_pairs = future.result()
            with self._lock:
                self._loss_sum += loss_sum
                self._loss_pairs += loss_pairs

    def _shard_rng(self, stream: int, epoch: int, shard: int):
        return np.random.default_rng([self.model.seed, stream, epoch, shard])

    def _generate_corpus_shard(
        self,
        flat: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        keep_probs: np.ndarray | None,
        epoch: int,
        shard: int,
        sel: np.ndarray,
    ) -> tuple | None:
        model = self.model
        grng = self._shard_rng(_GEN_STREAM, epoch, shard)
        shard_lengths = lengths[sel]
        n_tokens = int(shard_lengths.sum())
        if n_tokens == 0:
            return None
        # Gather the shard's sentences from the flat corpus in one shot.
        segment = np.concatenate([[0], np.cumsum(shard_lengths)[:-1]])
        token_idx = np.repeat(starts[:-1][sel], shard_lengths) + (
            np.arange(n_tokens) - np.repeat(segment, shard_lengths)
        )
        tokens = flat[token_idx]
        if keep_probs is not None:
            keep = grng.random(n_tokens) < keep_probs[tokens]
            sentence_id = np.repeat(np.arange(len(sel)), shard_lengths)
            shard_lengths = np.bincount(sentence_id[keep], minlength=len(sel))
            tokens = tokens[keep]
        shard_starts = np.concatenate([[0], np.cumsum(shard_lengths)]).astype(
            np.int64
        )
        centers, contexts = skipgram_pairs_flat(
            tokens, shard_starts, model.context, grng, dynamic=model.dynamic_window
        )
        if len(centers) == 0:
            return None
        return self._dedup_and_shuffle(centers, contexts, grng)

    def _dedup_and_shuffle(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        grng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        uniq_c, uniq_x, multiplicity = dedup_pairs(
            centers, contexts, self._n_vocab
        )
        # Shuffling is load-bearing: np.unique returns same-center pairs
        # adjacent, and adjacent pairs share a negative draw.
        perm = grng.permutation(len(uniq_c))
        return uniq_c[perm], uniq_x[perm], multiplicity[perm]

    def _claim(self, represented: int) -> float:
        """Advance the processed-pairs counter; returns the batch's lr.

        The counter lives behind the trainer lock on the thread path
        and behind a ``multiprocessing.Value`` on the process path, so
        the linear learning-rate decay tracks global progress under
        either executor.
        """
        model = self.model
        shared = self._shared_processed
        if shared is not None:
            with shared.get_lock():
                fraction = min(shared.value / self._total_pairs, 1.0)
                shared.value += represented
        else:
            with self._lock:
                fraction = min(self._processed / self._total_pairs, 1.0)
                self._processed += represented
        return max(model.alpha * (1.0 - fraction), model.min_alpha)

    def _train_shard(
        self, epoch: int, shard: int, payload: tuple
    ) -> tuple[float, int]:
        """SGD over one shard's pair stream; returns (loss sum, pairs).

        Loss terms are returned rather than accumulated in place so the
        same code serves thread workers (parent absorbs under its lock)
        and forked processes (values travel home with the result).
        """
        model = self.model
        centers, contexts, multiplicity = payload
        srng = self._shard_rng(_SGD_STREAM, epoch, shard)
        loss_sum = 0.0
        loss_pairs = 0
        for lo in range(0, len(centers), self._batch_pairs):
            hi = min(lo + self._batch_pairs, len(centers))
            represented = int(multiplicity[lo:hi].sum())
            lr = self._claim(represented)
            loss = sgd_step_fast(
                self._syn0,
                self._syn1,
                centers[lo:hi],
                contexts[lo:hi],
                multiplicity[lo:hi],
                self._sampler,
                model.negative,
                self.shared_negatives,
                lr,
                srng,
                track_loss=self._track_loss,
            )
            obs.add("train.pairs", represented)
            obs.add("train.batches", 1)
            obs.observe("train.batch_pairs", hi - lo)
            if loss is not None:
                loss_sum += loss
                loss_pairs += represented
            if model.max_norm is not None:
                cap_row_norms(self._syn0, model.max_norm)
                cap_row_norms(self._syn1, model.max_norm)
        return loss_sum, loss_pairs
