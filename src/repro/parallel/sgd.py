"""Vectorized SGNS kernels for the sharded trainer.

Three optimisations over the sequential ``Word2Vec._sgd_step``:

* a word2vec-style sigmoid lookup table (the logistic function is a
  large share of the sequential profile);
* scatter-adds expressed as one sparse-matrix × dense-matrix product
  (``scipy.sparse``), which is several times faster than the
  sort + ``reduceat`` fallback at training batch sizes;
* shard-level deduplication of (center, context) pairs: darknet corpora
  are extremely repetitive, so collapsing duplicates and scaling the
  positive gradient by the multiplicity does the same SGD work on
  30-50 % fewer rows.  Within a batch the duplicate pairs would have
  computed identical scores from the same stale vectors, so the summed
  gradient is exactly ``multiplicity ×`` the single-pair gradient.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.w2v.mathutils import scatter_add
from repro.w2v.negative import NegativeSampler

try:  # scipy is a declared dependency, but degrade gracefully without it
    import scipy.sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None

_TABLE_SIZE = 2048
_TABLE_CLAMP = 12.0
_SIG_TABLE = (
    1.0
    / (1.0 + np.exp(-np.linspace(-_TABLE_CLAMP, _TABLE_CLAMP, _TABLE_SIZE)))
).astype(np.float32)
_SIG_SCALE = np.float32((_TABLE_SIZE - 1) / (2.0 * _TABLE_CLAMP))


def sigmoid_table(x: np.ndarray) -> np.ndarray:
    """Table-lookup logistic function (word2vec's EXP_TABLE trick).

    Quantises the input to one of 2048 buckets on [-12, 12]; the
    resulting resolution (~0.012 in x) is far below the SGD noise floor
    and several times faster than evaluating ``exp``.
    """
    idx = ((x + np.float32(_TABLE_CLAMP)) * _SIG_SCALE).astype(np.int32)
    np.clip(idx, 0, _TABLE_SIZE - 1, out=idx)
    return _SIG_TABLE[idx]


def scaled_scatter_add(
    matrix: np.ndarray,
    rows: np.ndarray,
    updates: np.ndarray,
    scale: np.ndarray | None = None,
) -> None:
    """``matrix[rows] += scale[:, None] * updates`` with duplicates summed.

    When scipy is available and the batch is large relative to the
    matrix, the scatter is expressed as a CSR (n_rows × batch) selection
    matrix times the dense update block — one BLAS-backed pass instead
    of a sort + reduce.  Folding ``scale`` into the sparse matrix data
    also avoids materialising the scaled update block.
    """
    batch = len(rows)
    if batch == 0:
        return
    n_rows = len(matrix)
    if _sparse is not None and n_rows <= 8 * batch:
        data = np.ones(batch, dtype=np.float32) if scale is None else scale
        selector = _sparse.csr_matrix(
            (data, (rows, np.arange(batch))), shape=(n_rows, batch)
        )
        np.add(matrix, selector @ updates, out=matrix)
    else:
        if scale is not None:
            updates = updates * scale[:, None]
        scatter_add(matrix, rows, updates)


def dedup_pairs(
    centers: np.ndarray, contexts: np.ndarray, n_vocab: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate (center, context) pairs to uniques + counts.

    Returns ``(unique_centers, unique_contexts, multiplicity)`` where
    ``multiplicity`` is float32 and sums to ``len(centers)``.  The
    uniques come out sorted by ``center * n_vocab + context``; callers
    that feed them to SGD with shared negative groups MUST shuffle them
    first, otherwise same-center pairs land in the same group and share
    one correlated negative draw, which measurably degrades embeddings.
    """
    key = centers.astype(np.int64) * np.int64(n_vocab) + contexts.astype(np.int64)
    unique_keys, multiplicity = np.unique(key, return_counts=True)
    unique_centers = unique_keys // n_vocab
    unique_contexts = unique_keys - unique_centers * n_vocab
    return (
        unique_centers.astype(np.int64),
        unique_contexts.astype(np.int64),
        multiplicity.astype(np.float32),
    )


def sgd_step_fast(
    syn0: np.ndarray,
    syn1: np.ndarray,
    centers: np.ndarray,
    contexts: np.ndarray,
    multiplicity: np.ndarray,
    sampler: NegativeSampler | None,
    negative: int,
    shared_negatives: int,
    lr: float,
    rng: np.random.Generator,
    track_loss: bool = False,
) -> float | None:
    """One batched SGNS step over deduplicated (center, context) pairs.

    The update is the same objective as ``Word2Vec._sgd_step`` — each
    *raw* pair contributes one positive and ``negative`` negative
    samples — but each unique pair's gradient is scaled by its
    ``multiplicity``, scores come from :func:`sigmoid_table`, and
    scatter-adds go through :func:`scaled_scatter_add`.

    Args:
        syn0, syn1: input/output embedding matrices, updated in place.
        centers, contexts: unique pair arrays (pre-shuffled).
        multiplicity: float32 raw-pair count per unique pair.
        sampler: negative sampler (``None`` disables negatives).
        negative: negative samples per raw pair.
        shared_negatives: group size sharing one negative draw.
        lr: learning rate for this batch.
        rng: randomness for the negative draws.
        track_loss: when true, return the multiplicity-weighted sum of
            the positive-pair losses ``-log σ(u·v)`` (else ``None``).
            Off by default — the extra ``log`` is not free.

    Returns:
        The batch's summed positive-pair loss when ``track_loss`` is
        set, otherwise ``None``.
    """
    n_pairs = len(centers)
    if n_pairs == 0:
        return 0.0 if track_loss else None
    lr32 = np.float32(lr)
    dim = syn0.shape[1]
    center_vecs = syn0[centers]
    context_vecs = syn1[contexts]

    pos_scores = sigmoid_table(np.einsum("ij,ij->i", center_vecs, context_vecs))
    loss: float | None = None
    if track_loss:
        loss = float(
            (-np.log(np.maximum(pos_scores, 1e-7)) * multiplicity).sum()
        )
    g_pos = ((1.0 - pos_scores) * lr32 * multiplicity).astype(np.float32)
    grad_centers = g_pos[:, None] * context_vecs

    if sampler is not None and negative:
        group = max(min(shared_negatives, n_pairs), 1)
        n_groups = max(n_pairs // group, 1)
        main = n_groups * group
        negatives = sampler.sample(rng, (n_groups, negative))  # (G, K)
        obs.add("train.negative_draws", int(negatives.size))
        neg_vecs = syn1[negatives]  # (G, K, V)
        grouped = center_vecs[:main].reshape(n_groups, group, dim)
        scores = sigmoid_table(np.matmul(grouped, neg_vecs.transpose(0, 2, 1)))
        g_neg = (
            -scores * lr32 * multiplicity[:main].reshape(n_groups, group, 1)
        ).astype(np.float32)
        grad_centers[:main] += np.matmul(g_neg, neg_vecs).reshape(main, dim)
        grad_negatives = np.matmul(g_neg.transpose(0, 2, 1), grouped)
        scaled_scatter_add(
            syn1, negatives.reshape(-1), grad_negatives.reshape(-1, dim)
        )
        if main < n_pairs:
            remainder = center_vecs[main:]
            tail_negatives = sampler.sample(rng, (1, negative))
            obs.add("train.negative_draws", negative)
            tail_vecs = syn1[tail_negatives[0]]  # (K, V)
            tail_scores = sigmoid_table(remainder @ tail_vecs.T)
            g_tail = (-tail_scores * lr32 * multiplicity[main:, None]).astype(
                np.float32
            )
            grad_centers[main:] += g_tail @ tail_vecs
            scatter_add(syn1, tail_negatives.reshape(-1), g_tail.T @ remainder)

    # Fused: the context gradient is g_pos * center_vecs, so folding
    # g_pos into the sparse selector skips the dense outer product.
    scaled_scatter_add(syn1, contexts, center_vecs, scale=g_pos)
    scaled_scatter_add(syn0, centers, grad_centers)
    return loss
