"""Shared-memory numpy arrays for cross-process Hogwild training.

Fork-inherited numpy arrays are copy-on-write: a worker process that
writes to one mutates its private copy, so plain arrays cannot carry
the syn0/syn1 weight matrices across a process pool.  A
:class:`SharedArray` places the buffer in POSIX shared memory
(``multiprocessing.shared_memory``), which is mapped ``MAP_SHARED`` —
writes from any process that inherited the mapping are visible to all
of them, giving the process backend the same asynchronous-overwrite
semantics ("Hogwild") that threads get for free.

Lifecycle: the creating process owns the segment and must call
:meth:`release` (unlink) when done; worker processes that merely
inherited the mapping must not unlink.  The trainer wraps usage in a
``try/finally`` so segments never leak past a crash.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np


class SharedArray:
    """A numpy array backed by a named POSIX shared-memory segment."""

    def __init__(self, shape: tuple[int, ...], dtype) -> None:
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)

    @classmethod
    def copy_of(cls, source: np.ndarray) -> "SharedArray":
        """A shared-memory copy of ``source``."""
        shared = cls(source.shape, source.dtype)
        shared.array[...] = source
        return shared

    def release(self) -> None:
        """Drop the mapping and unlink the segment (owner only)."""
        # The array view must die before close(), else the exported
        # buffer keeps the mapping pinned and close() raises.
        self.array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
